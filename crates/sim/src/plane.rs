//! The flat message plane: preallocated per-`(node, port)` message slots,
//! generic over the slot storage backend.
//!
//! A plane owns one slot per edge endpoint (the graph's dense CSR slot
//! space, see `lma_graph::CsrAdjacency`).  Senders *scatter* into their own
//! slots; receivers *gather* by reading the mirror slot of each of their
//! ports.  The runtime keeps two planes and swaps them every round
//! (double-buffering), so the steady-state loop performs **no** per-round
//! allocation, and the occupancy [`FixedBitSet`] replaces the seed's
//! per-node `HashSet` port-dedup.
//!
//! Three interchangeable backends implement [`PlaneStore`] (selected by
//! [`Backing`] on `RunConfig`; every executor works with any of them):
//!
//! * [`MessagePlane`] — **inline** `Option<M>` slots.  Delivery moves the
//!   message value; nothing is encoded.  The right default for fixed-size
//!   (`Copy`-ish) messages, where moving *is* free.
//! * [`ArenaPlane`] — **arena** slots: each slot is an `(offset, len)` span
//!   into a per-round byte bump buffer, filled through the [`Wire`] codec.
//!   Scattering encodes into the arena and gathering decodes into recycled
//!   message values, so variable-size payloads (`Vec`-carrying gossip
//!   messages) stop heap-allocating per message: the arena is *reset* (not
//!   freed) every round and grows to the high-water mark once.
//! * [`HybridPlane`] — **tagged 16-byte cells**, the sled-`IVec` idea
//!   adapted to the plane's bump-arena discipline.  Every slot is a fixed
//!   16-byte cell whose first byte is a tag: an encoded message of **at
//!   most 15 bytes** is stored *inline in the cell* (tag = length, payload
//!   in the remaining 15 bytes — no arena touch, no pointer chase on
//!   gather), while a larger one spills to an `(offset, len)` span into the
//!   same per-round bump arena the [`ArenaPlane`] uses.  The 15-byte
//!   threshold is what a 16-byte cell affords after its one tag byte, and
//!   it is exactly the regime the paper lives in: constant-size advice and
//!   `O(log n)`-bit CONGEST messages (GHS fragments, flood ids, advice
//!   bits) encode to a handful of LEB128 bytes, so the hot path never
//!   leaves the cell array, while unbounded LOCAL payloads (`Knowledge`
//!   fact vectors) keep the arena's zero-allocation steady state.
//!
//! Planes are also reused *across* runs: the sequential executor checks its
//! plane pair out of a per-thread pool (see [`crate::pool`]), and the sharded
//! executor sizes one plane per shard over the shard's contiguous slot range
//! and ships cross-shard traffic through the backend's [`PlaneStore::Boundary`]
//! exchange buffers (owned values for the inline backend, copied byte spans
//! for the arena backend, whole 16-byte cells — plus any spilled bytes — for
//! the hybrid backend, so small cross-shard messages move as one memcpy).

use crate::bitset::FixedBitSet;
use crate::wire::{Wire, WireReader};
use std::marker::PhantomData;

/// Which slot-storage backend the executors route messages through.
///
/// All backings produce **bit-identical** outputs, stats, traces and errors
/// for the same `(graph, config, programs)` — pinned by the
/// `runtime_equivalence` suite — so the choice is purely an allocation/
/// throughput trade-off:
///
/// * [`Backing::Inline`] (the default): slots hold `Option<M>` and delivery
///   moves the value.  Best when `M` is small and flat (`u64`, small enums):
///   no codec work at all.
/// * [`Backing::Arena`]: slots are byte spans in a per-round bump arena via
///   the [`Wire`] codec.  Best when `M` owns heap memory (`Vec`-carrying
///   gossip messages): per-message allocations disappear in steady state.
/// * [`Backing::Hybrid`]: fixed 16-byte tagged cells — encodings of at most
///   15 bytes live inline in the cell, larger ones spill to the bump arena.
///   Best when small and large messages mix, or when a codec-routed backend
///   is wanted without paying arena span chasing for small payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backing {
    /// Inline `Option<M>` slot storage ([`MessagePlane`]).
    #[default]
    Inline,
    /// Byte-arena slot storage ([`ArenaPlane`]).
    Arena,
    /// Tagged 16-byte cells, inline up to 15 encoded bytes, arena spill
    /// beyond ([`HybridPlane`]).
    Hybrid,
}

impl Backing {
    /// Every backing, in registry/CLI display order.  Any code that
    /// enumerates backends (scenario matrices, test sweeps, bench groups,
    /// CLI filters) must iterate this constant instead of a hand-written
    /// list, so a new backend can never be silently omitted.
    pub const ALL: [Backing; 3] = [Backing::Inline, Backing::Arena, Backing::Hybrid];

    /// The stable lower-case label (`"inline"`, `"arena"`, `"hybrid"`) used
    /// in scenario cell ids, CLI filters and bench ids.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            Backing::Inline => "inline",
            Backing::Arena => "arena",
            Backing::Hybrid => "hybrid",
        }
    }
}

impl std::fmt::Display for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Backing {
    type Err = UnknownBacking;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Backing::ALL
            .into_iter()
            .find(|b| b.as_str() == s)
            .ok_or_else(|| UnknownBacking(s.to_string()))
    }
}

/// Error returned by [`Backing`]'s `FromStr`: the string matched no
/// backing's [`Backing::as_str`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBacking(String);

impl std::fmt::Display for UnknownBacking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown plane backing {:?} (expected one of", self.0)?;
        for b in Backing::ALL {
            write!(f, " {:?}", b.as_str())?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for UnknownBacking {}

/// Error returned when storing into a plane slot that was already written
/// since the last occupancy reset (a duplicate port use).  Carries the
/// offending slot plus the plane's slot count, so the runtime can report the
/// exact port in `RunError::MalformedOutbox` — and diagnostics can tell a
/// genuine duplicate from an out-of-plane index — instead of silently
/// dropping the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotOccupied {
    /// The slot (in this plane's index space) that was already occupied.
    pub slot: usize,
    /// The plane's total slot count at the time of the collision.
    pub len: usize,
}

impl std::fmt::Display for SlotOccupied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "message slot {} of {} already occupied this round",
            self.slot, self.len
        )
    }
}

impl std::error::Error for SlotOccupied {}

/// A slot-storage backend for the message plane: the storage contract every
/// executor (sequential, sharded) is generic over.
///
/// The `spare` parameter threaded through [`PlaneStore::store`] and
/// [`PlaneStore::fetch`] is the executor's recycling pool of message
/// values: backends that serialize ([`ArenaPlane`]) park spent messages
/// there on store and revive them (via [`Wire::decode_into`]) on fetch, so
/// steady-state rounds allocate nothing; the inline backend ignores it
/// (messages move through the slots themselves).
pub trait PlaneStore<M>: Send + Sized + 'static {
    /// Dense per-shard-pair exchange buffer used by the sharded executor to
    /// carry this backend's boundary traffic (owned values inline, copied
    /// byte spans for the arena).
    type Boundary: Send + Default;

    /// True when gathered messages should be returned to the spare pool
    /// after each node steps (serializing backends revive them on the next
    /// fetch; for the inline backend recycling would just hoard dead
    /// values).
    const RECYCLES: bool;

    /// A plane with `len` empty slots (`len = 2m` for a graph with `m`
    /// edges).
    fn with_len(len: usize) -> Self;

    /// Number of slots.
    fn slot_count(&self) -> usize;

    /// Stores `msg` into `slot`, consuming it (serializing backends park the
    /// spent value in `spare`).
    ///
    /// # Errors
    /// [`SlotOccupied`] when the slot was already written since the last
    /// [`PlaneStore::reset_round`]; the first message is preserved.
    fn store(&mut self, slot: usize, msg: M, spare: &mut Vec<M>) -> Result<(), SlotOccupied>;

    /// Stores a copy of `msg` into `slot` without consuming it — the
    /// broadcast fast path: the arena encodes straight from the reference
    /// (no clone at all), the inline backend clones.
    ///
    /// # Errors
    /// Exactly as [`PlaneStore::store`].
    fn store_ref(&mut self, slot: usize, msg: &M) -> Result<(), SlotOccupied>;

    /// Takes the message out of `slot`, if any (reviving a `spare` value in
    /// serializing backends).
    fn fetch(&mut self, slot: usize, spare: &mut Vec<M>) -> Option<M>;

    /// Resets the plane for the next round of scattering: occupancy
    /// tracking is cleared and arena bytes are reset (not freed).  The
    /// caller guarantees the slots have been drained (every slot is gathered
    /// or exported exactly once per round).
    fn reset_round(&mut self);

    /// Resizes to `len` slots and clears every slot, making the plane
    /// indistinguishable from a freshly built one while reusing its
    /// allocations (the pool checkout path: an aborted run may have left
    /// messages behind).
    fn prepare(&mut self, len: usize);

    /// An exchange buffer with `len` dense positions.
    fn new_boundary(len: usize) -> Self::Boundary;

    /// Drains this plane's boundary slots (`slots`, global indices; the
    /// plane's slot 0 is global `slot_base`) into `out`, position by
    /// position — the producer half of the sharded executor's cross-shard
    /// hand-off.  Every position is overwritten (empty slots clear it).
    fn export_boundary(&mut self, slots: &[usize], slot_base: usize, out: &mut Self::Boundary);

    /// Takes the message at `pos` out of an exchange buffer, if any — the
    /// consumer half of the hand-off.
    fn fetch_boundary(buf: &mut Self::Boundary, pos: usize, spare: &mut Vec<M>) -> Option<M>;
}

/// The inline slot backend: a preallocated, reusable buffer of `Option<M>`
/// message slots indexed by the graph's dense `(node, port)` slot space.
#[derive(Debug)]
pub struct MessagePlane<M> {
    slots: Vec<Option<M>>,
    occupied: FixedBitSet,
}

impl<M> MessagePlane<M> {
    /// A plane with `len` empty slots (`len = 2m` for a graph with `m`
    /// edges).
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            slots: (0..len).map(|_| None).collect(),
            occupied: FixedBitSet::new(len),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the plane has no slots at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Writes `msg` into `slot`.  Fails — dropping the message and surfacing
    /// the offending slot — when the slot was already written since the last
    /// [`MessagePlane::clear_occupancy`], i.e. on a duplicate port use.
    ///
    /// # Errors
    /// Returns [`SlotOccupied`] naming the duplicate slot; the first message
    /// written to the slot is preserved.
    pub fn put(&mut self, slot: usize, msg: M) -> Result<(), SlotOccupied> {
        if !self.occupied.insert(slot) {
            return Err(SlotOccupied {
                slot,
                len: self.slots.len(),
            });
        }
        self.slots[slot] = Some(msg);
        Ok(())
    }

    /// Moves the message out of `slot`, if any (no clone: delivery transfers
    /// ownership from the sender's slot to the receiver's inbox).
    pub fn take(&mut self, slot: usize) -> Option<M> {
        self.slots[slot].take()
    }

    /// Resets the occupancy tracking for the next round of scattering.
    ///
    /// The caller is responsible for the slots themselves having been
    /// drained (every slot is gathered by exactly one receiver each round,
    /// so after a full gather pass the `Option`s are all `None`).
    pub fn clear_occupancy(&mut self) {
        self.occupied.clear();
    }

    /// Empties every slot and the occupancy set without resizing — the
    /// explicit "drop whatever is in flight" operation (aborted runs, reuse
    /// on the same graph).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.occupied.clear();
    }

    /// Resizes the plane to `len` slots and clears every slot and the
    /// occupancy set, making the plane indistinguishable from a freshly
    /// built one while reusing its allocations (the pool checkout path:
    /// an aborted run — or a completed one whose programs sent on their
    /// final round — may have left messages behind).
    pub fn prepare(&mut self, len: usize) {
        // Clear before resizing: slots retained across a resize would
        // otherwise keep their stale messages, and `take` reads the slot
        // directly rather than consulting the (rebuilt) occupancy set.
        self.clear();
        if self.slots.len() != len {
            self.slots.resize_with(len, || None);
            self.occupied = FixedBitSet::new(len);
        }
    }
}

impl<M: Clone + Send + 'static> PlaneStore<M> for MessagePlane<M> {
    type Boundary = Vec<Option<M>>;

    const RECYCLES: bool = false;

    fn with_len(len: usize) -> Self {
        Self::new(len)
    }

    fn slot_count(&self) -> usize {
        self.len()
    }

    fn store(&mut self, slot: usize, msg: M, _spare: &mut Vec<M>) -> Result<(), SlotOccupied> {
        self.put(slot, msg)
    }

    fn store_ref(&mut self, slot: usize, msg: &M) -> Result<(), SlotOccupied> {
        self.put(slot, msg.clone())
    }

    fn fetch(&mut self, slot: usize, _spare: &mut Vec<M>) -> Option<M> {
        self.take(slot)
    }

    fn reset_round(&mut self) {
        self.clear_occupancy();
    }

    fn prepare(&mut self, len: usize) {
        MessagePlane::prepare(self, len);
    }

    fn new_boundary(len: usize) -> Self::Boundary {
        (0..len).map(|_| None).collect()
    }

    fn export_boundary(&mut self, slots: &[usize], slot_base: usize, out: &mut Self::Boundary) {
        debug_assert_eq!(out.len(), slots.len());
        for (pos, &slot) in slots.iter().enumerate() {
            out[pos] = self.take(slot - slot_base);
        }
    }

    fn fetch_boundary(buf: &mut Self::Boundary, pos: usize, _spare: &mut Vec<M>) -> Option<M> {
        buf[pos].take()
    }
}

/// One encoded message span inside an arena: `(offset, len)` in bytes.
/// `u32` halves the table's footprint; a >4 GiB per-round arena is
/// rejected loudly at store time.
type Span = (u32, u32);

fn make_span(start: usize, end: usize) -> Span {
    (
        u32::try_from(start).expect("arena exceeded 4 GiB in one round"),
        u32::try_from(end - start).expect("single message exceeded 4 GiB"),
    )
}

/// The arena slot backend: each slot is a byte span into a per-round bump
/// buffer, written and read through the [`Wire`] codec.
///
/// Scattering appends the encoded message to `bytes` and records the span;
/// gathering decodes the span into a recycled message value
/// ([`Wire::decode_into`] on a spare, so no allocation once capacities have
/// reached their high-water mark).  [`PlaneStore::reset_round`] truncates
/// `bytes` without freeing, so one warmed-up arena serves every later round
/// — and, via [`crate::pool`], every later run — allocation-free.
#[derive(Debug)]
pub struct ArenaPlane<M> {
    spans: Vec<Span>,
    /// Duplicate-port detection since the last round reset.
    occupied: FixedBitSet,
    /// Slots currently holding an undelivered message.
    filled: FixedBitSet,
    bytes: Vec<u8>,
    _msg: PhantomData<fn(M) -> M>,
}

impl<M> ArenaPlane<M> {
    /// A plane with `len` empty slots over an empty arena.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            spans: vec![(0, 0); len],
            occupied: FixedBitSet::new(len),
            filled: FixedBitSet::new(len),
            bytes: Vec::new(),
            _msg: PhantomData,
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the plane has no slots at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Bytes currently sitting in the arena (encoded, undelivered traffic
    /// of the round being scattered) — exposed for benches and tests.
    #[must_use]
    pub fn arena_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Empties every slot, the occupancy tracking and the arena without
    /// freeing any buffer.
    pub fn clear(&mut self) {
        self.occupied.clear();
        self.filled.clear();
        self.bytes.clear();
    }
}

impl<M: Wire + Send + 'static> PlaneStore<M> for ArenaPlane<M> {
    type Boundary = ArenaBoundary;

    const RECYCLES: bool = true;

    fn with_len(len: usize) -> Self {
        Self::new(len)
    }

    fn slot_count(&self) -> usize {
        self.len()
    }

    fn store(&mut self, slot: usize, msg: M, spare: &mut Vec<M>) -> Result<(), SlotOccupied> {
        let stored = self.store_ref(slot, &msg);
        // Whether stored or rejected as a duplicate, the value itself is
        // spent: recycle its allocations for a future decode.  Capped at
        // one plane's worth — a gather pass can never revive more spares
        // than there are slots, so anything beyond that is a leak that
        // grows the pool forever under by-value senders.
        if spare.len() < self.spans.len() {
            spare.push(msg);
        }
        stored
    }

    fn store_ref(&mut self, slot: usize, msg: &M) -> Result<(), SlotOccupied> {
        if !self.occupied.insert(slot) {
            return Err(SlotOccupied {
                slot,
                len: self.spans.len(),
            });
        }
        let start = self.bytes.len();
        msg.encode(&mut self.bytes);
        self.spans[slot] = make_span(start, self.bytes.len());
        self.filled.insert(slot);
        Ok(())
    }

    fn fetch(&mut self, slot: usize, spare: &mut Vec<M>) -> Option<M> {
        if !self.filled.remove(slot) {
            return None;
        }
        let (offset, len) = self.spans[slot];
        let span = &self.bytes[offset as usize..offset as usize + len as usize];
        Some(decode_span(span, spare))
    }

    fn reset_round(&mut self) {
        debug_assert_eq!(
            self.filled.count(),
            0,
            "arena reset with undelivered messages"
        );
        self.occupied.clear();
        self.bytes.clear();
    }

    fn prepare(&mut self, len: usize) {
        if self.spans.len() != len {
            self.spans.clear();
            self.spans.resize(len, (0, 0));
            self.occupied = FixedBitSet::new(len);
            self.filled = FixedBitSet::new(len);
            self.bytes.clear();
        } else {
            self.clear();
        }
    }

    fn new_boundary(len: usize) -> Self::Boundary {
        ArenaBoundary {
            spans: vec![(0, 0); len],
            filled: FixedBitSet::new(len),
            bytes: Vec::new(),
        }
    }

    fn export_boundary(&mut self, slots: &[usize], slot_base: usize, out: &mut Self::Boundary) {
        // The parity discipline guarantees a producer never exports into a
        // buffer the consumer has `mem::take`n (they touch opposite
        // parities), so `out` is always the properly sized buffer built by
        // `new_boundary` — same contract as the inline backend.
        debug_assert_eq!(out.spans.len(), slots.len());
        out.bytes.clear();
        for (pos, &slot) in slots.iter().enumerate() {
            let local = slot - slot_base;
            if self.filled.remove(local) {
                let (offset, len) = self.spans[local];
                let start = out.bytes.len();
                out.bytes.extend_from_slice(
                    &self.bytes[offset as usize..offset as usize + len as usize],
                );
                out.spans[pos] = make_span(start, out.bytes.len());
                out.filled.insert(pos);
            } else {
                out.filled.remove(pos);
            }
        }
    }

    fn fetch_boundary(buf: &mut Self::Boundary, pos: usize, spare: &mut Vec<M>) -> Option<M> {
        if !buf.filled.remove(pos) {
            return None;
        }
        let (offset, len) = buf.spans[pos];
        let span = &buf.bytes[offset as usize..offset as usize + len as usize];
        Some(decode_span(span, spare))
    }
}

fn decode_span<M: Wire>(span: &[u8], spare: &mut Vec<M>) -> M {
    let mut reader = WireReader::new(span);
    let msg = match spare.pop() {
        Some(mut revived) => {
            revived.decode_into(&mut reader);
            revived
        }
        None => M::decode(&mut reader),
    };
    debug_assert!(reader.is_exhausted(), "decode did not consume its span");
    msg
}

/// The arena backend's cross-shard exchange buffer: the boundary slots'
/// encoded bytes, copied (not re-encoded) out of the producer shard's plane.
/// Like the plane's own arena, its byte buffer is reset, never freed.
#[derive(Debug, Default)]
pub struct ArenaBoundary {
    spans: Vec<Span>,
    filled: FixedBitSet,
    bytes: Vec<u8>,
}

/// One hybrid slot: 16 bytes, byte 0 is the tag.
///
/// * tag `0..=15` — the encoded message is stored inline: `tag` payload
///   bytes at `cell[1..=tag]`.
/// * tag [`SPILL`] — the message spilled to the bump arena: `cell[1..5]` is
///   the little-endian `u32` offset, `cell[5..9]` the little-endian `u32`
///   length.
type HybridCell = [u8; 16];

/// Maximum encoded length stored inline in a [`HybridCell`]: the 16-byte
/// cell minus its one tag byte.
const INLINE_CAP: usize = 15;

/// The tag marking a spilled cell (any value above [`INLINE_CAP`] works;
/// `0xff` makes spilled cells obvious in a debugger).
const SPILL: u8 = 0xff;

fn write_spill(cell: &mut HybridCell, start: usize, end: usize) {
    let (offset, len) = make_span(start, end);
    cell[0] = SPILL;
    cell[1..5].copy_from_slice(&offset.to_le_bytes());
    cell[5..9].copy_from_slice(&len.to_le_bytes());
}

/// Decodes the message held by `cell` (inline payload or a span into
/// `bytes`), reviving a spare value where possible.
fn decode_cell<M: Wire>(cell: &HybridCell, bytes: &[u8], spare: &mut Vec<M>) -> M {
    let tag = cell[0];
    let span = if tag == SPILL {
        let offset = u32::from_le_bytes(cell[1..5].try_into().expect("4 bytes")) as usize;
        let len = u32::from_le_bytes(cell[5..9].try_into().expect("4 bytes")) as usize;
        &bytes[offset..offset + len]
    } else {
        &cell[1..1 + tag as usize]
    };
    decode_span(span, spare)
}

/// The hybrid slot backend: every slot is a fixed 16-byte tagged cell
/// (`HybridCell`).  Messages whose [`Wire`] encoding fits in 15 bytes are
/// stored inline in the cell — no arena touch on store, no pointer chase on
/// fetch, and boundary export is one 16-byte copy.  Larger encodings spill
/// to the same per-round bump arena discipline as [`ArenaPlane`] (reset,
/// never freed).
///
/// The threshold is not tunable by design: 15 bytes is what a 16-byte cell
/// affords after its tag byte, two cells fill one 32-byte half cache line,
/// and every `O(log n)`-bit CONGEST message in this workspace (GHS
/// fragments, flood ids, advice bits — the paper's entire regime) encodes
/// to well under 15 LEB128 bytes, while `Vec`-carrying LOCAL payloads
/// spill and keep the arena's zero-allocation steady state.
#[derive(Debug)]
pub struct HybridPlane<M> {
    cells: Vec<HybridCell>,
    /// Duplicate-port detection since the last round reset.
    occupied: FixedBitSet,
    /// Slots currently holding an undelivered message.
    filled: FixedBitSet,
    /// The spill arena: encodings longer than 15 bytes, bump-allocated and
    /// reset (not freed) each round.
    bytes: Vec<u8>,
    _msg: PhantomData<fn(M) -> M>,
}

impl<M> HybridPlane<M> {
    /// A plane with `len` empty cells over an empty spill arena.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            cells: vec![[0; 16]; len],
            occupied: FixedBitSet::new(len),
            filled: FixedBitSet::new(len),
            bytes: Vec::new(),
            _msg: PhantomData,
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the plane has no slots at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Bytes currently sitting in the spill arena (encoded, undelivered
    /// *spilled* traffic of the round being scattered; inline messages
    /// never appear here) — exposed for benches and tests.
    #[must_use]
    pub fn spill_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Empties every slot, the occupancy tracking and the spill arena
    /// without freeing any buffer.
    pub fn clear(&mut self) {
        self.occupied.clear();
        self.filled.clear();
        self.bytes.clear();
    }
}

impl<M: Wire + Send + 'static> PlaneStore<M> for HybridPlane<M> {
    type Boundary = HybridBoundary;

    const RECYCLES: bool = true;

    fn with_len(len: usize) -> Self {
        Self::new(len)
    }

    fn slot_count(&self) -> usize {
        self.len()
    }

    fn store(&mut self, slot: usize, msg: M, spare: &mut Vec<M>) -> Result<(), SlotOccupied> {
        let stored = self.store_ref(slot, &msg);
        // Whether stored or rejected as a duplicate, the value itself is
        // spent: recycle its allocations for a future decode.  Capped at
        // one plane's worth, like the arena backend, so by-value senders
        // cannot grow the pool without bound.
        if spare.len() < self.cells.len() {
            spare.push(msg);
        }
        stored
    }

    fn store_ref(&mut self, slot: usize, msg: &M) -> Result<(), SlotOccupied> {
        if !self.occupied.insert(slot) {
            return Err(SlotOccupied {
                slot,
                len: self.cells.len(),
            });
        }
        // Encode onto the arena tail unconditionally — the length is only
        // known afterwards — then claw the bytes back into the cell when
        // they fit: the truncate un-bumps the arena, so inline traffic
        // leaves it untouched.
        let start = self.bytes.len();
        msg.encode(&mut self.bytes);
        let n = self.bytes.len() - start;
        let cell = &mut self.cells[slot];
        if n <= INLINE_CAP {
            cell[0] = n as u8;
            cell[1..1 + n].copy_from_slice(&self.bytes[start..]);
            self.bytes.truncate(start);
        } else {
            write_spill(cell, start, self.bytes.len());
        }
        self.filled.insert(slot);
        Ok(())
    }

    fn fetch(&mut self, slot: usize, spare: &mut Vec<M>) -> Option<M> {
        if !self.filled.remove(slot) {
            return None;
        }
        Some(decode_cell(&self.cells[slot], &self.bytes, spare))
    }

    fn reset_round(&mut self) {
        debug_assert_eq!(
            self.filled.count(),
            0,
            "hybrid reset with undelivered messages"
        );
        self.occupied.clear();
        self.bytes.clear();
    }

    fn prepare(&mut self, len: usize) {
        if self.cells.len() != len {
            self.cells.clear();
            self.cells.resize(len, [0; 16]);
            self.occupied = FixedBitSet::new(len);
            self.filled = FixedBitSet::new(len);
            self.bytes.clear();
        } else {
            self.clear();
        }
    }

    fn new_boundary(len: usize) -> Self::Boundary {
        HybridBoundary {
            cells: vec![[0; 16]; len],
            filled: FixedBitSet::new(len),
            bytes: Vec::new(),
        }
    }

    fn export_boundary(&mut self, slots: &[usize], slot_base: usize, out: &mut Self::Boundary) {
        // Same parity contract as the other backends: `out` is always the
        // properly sized buffer built by `new_boundary`.
        debug_assert_eq!(out.cells.len(), slots.len());
        out.bytes.clear();
        for (pos, &slot) in slots.iter().enumerate() {
            let local = slot - slot_base;
            if self.filled.remove(local) {
                // Inline cells cross the boundary as one 16-byte copy;
                // spilled cells additionally carry their bytes, re-based
                // onto the buffer's own arena.
                let mut cell = self.cells[local];
                if cell[0] == SPILL {
                    let offset = u32::from_le_bytes(cell[1..5].try_into().expect("4 bytes"));
                    let len = u32::from_le_bytes(cell[5..9].try_into().expect("4 bytes"));
                    let start = out.bytes.len();
                    out.bytes
                        .extend_from_slice(&self.bytes[offset as usize..(offset + len) as usize]);
                    write_spill(&mut cell, start, out.bytes.len());
                }
                out.cells[pos] = cell;
                out.filled.insert(pos);
            } else {
                out.filled.remove(pos);
            }
        }
    }

    fn fetch_boundary(buf: &mut Self::Boundary, pos: usize, spare: &mut Vec<M>) -> Option<M> {
        if !buf.filled.remove(pos) {
            return None;
        }
        Some(decode_cell(&buf.cells[pos], &buf.bytes, spare))
    }
}

/// The hybrid backend's cross-shard exchange buffer: the boundary slots'
/// 16-byte cells copied verbatim, plus the spilled bytes of any
/// over-threshold messages (re-based onto this buffer's own byte arena).
/// Like the plane's own arena, its byte buffer is reset, never freed.
#[derive(Debug, Default)]
pub struct HybridBoundary {
    cells: Vec<HybridCell>,
    filled: FixedBitSet,
    bytes: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_take_round_trip() {
        let mut p: MessagePlane<u32> = MessagePlane::new(4);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert!(p.put(2, 77).is_ok());
        assert_eq!(p.take(2), Some(77));
        assert_eq!(p.take(2), None);
    }

    #[test]
    fn duplicate_put_surfaces_the_slot_until_occupancy_reset() {
        let mut p: MessagePlane<u32> = MessagePlane::new(2);
        assert!(p.put(0, 1).is_ok());
        assert_eq!(
            p.put(0, 2),
            Err(SlotOccupied { slot: 0, len: 2 }),
            "second write to the same slot must be rejected with the slot"
        );
        assert_eq!(p.take(0), Some(1), "the first message must be preserved");
        p.clear_occupancy();
        assert!(p.put(0, 3).is_ok());
        assert_eq!(p.take(0), Some(3));
    }

    #[test]
    fn empty_plane() {
        let mut p: MessagePlane<()> = MessagePlane::new(0);
        assert!(p.is_empty());
        p.clear_occupancy();
    }

    #[test]
    fn clear_drops_messages_and_occupancy() {
        let mut p: MessagePlane<u32> = MessagePlane::new(3);
        assert!(p.put(1, 9).is_ok());
        p.clear();
        assert_eq!(p.take(1), None);
        assert!(p.put(1, 4).is_ok(), "clear must reset occupancy");
        assert_eq!(p.len(), 3, "clear must not resize");
    }

    #[test]
    fn prepare_clears_stale_messages_and_resizes() {
        let mut p: MessagePlane<u32> = MessagePlane::new(3);
        assert!(p.put(1, 9).is_ok());
        p.prepare(3);
        assert_eq!(p.take(1), None, "prepare must drop stale messages");
        assert!(p.put(1, 4).is_ok(), "prepare must reset occupancy");
        p.prepare(5);
        assert_eq!(p.len(), 5);
        assert_eq!(
            p.take(1),
            None,
            "a growing prepare must drop messages in retained slots"
        );
        assert!(p.put(4, 1).is_ok());
        assert!(p.put(1, 6).is_ok());
        p.prepare(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.take(1), None, "a shrinking prepare must drop messages");
    }

    fn arena_cycle(p: &mut ArenaPlane<Vec<u64>>, spare: &mut Vec<Vec<u64>>) {
        assert!(p.store_ref(0, &vec![1, 2, 3]).is_ok());
        assert!(p.store(2, vec![9; 10], spare).is_ok());
        assert_eq!(
            PlaneStore::store(p, 2, vec![4], spare),
            Err(SlotOccupied { slot: 2, len: 4 }),
            "duplicate slot must be rejected"
        );
        let got = p.fetch(0, spare).expect("slot 0 holds a message");
        assert_eq!(got, vec![1, 2, 3]);
        spare.push(got); // what the executor's inbox recycling does
        assert_eq!(p.fetch(0, spare), None, "a span is delivered only once");
        assert_eq!(p.fetch(1, spare), None);
        let got = p.fetch(2, spare).expect("slot 2 holds a message");
        assert_eq!(got, vec![9; 10], "first write wins");
        spare.push(got);
        p.reset_round();
    }

    #[test]
    fn arena_store_fetch_round_trip_and_reuse() {
        let mut p: ArenaPlane<Vec<u64>> = ArenaPlane::new(4);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        let mut spare: Vec<Vec<u64>> = Vec::new();
        arena_cycle(&mut p, &mut spare);
        assert_eq!(p.arena_bytes(), 0, "reset_round must empty the arena");
        let capacity_before = spare.iter().map(Vec::capacity).max().unwrap_or(0);
        assert!(capacity_before >= 10, "spent values must be recycled");
        // A second identical round must revive spares instead of allocating
        // bigger ones.
        arena_cycle(&mut p, &mut spare);
        assert!(spare.iter().map(Vec::capacity).max().unwrap_or(0) >= capacity_before);
    }

    #[test]
    fn arena_prepare_drops_stale_state_and_resizes() {
        let mut p: ArenaPlane<u64> = ArenaPlane::new(3);
        let mut spare = Vec::new();
        assert!(p.store(1, 7, &mut spare).is_ok());
        PlaneStore::<u64>::prepare(&mut p, 3);
        assert_eq!(p.fetch(1, &mut spare), None, "prepare must drop messages");
        assert!(p.store(1, 8, &mut spare).is_ok(), "occupancy must reset");
        PlaneStore::<u64>::prepare(&mut p, 6);
        assert_eq!(p.len(), 6);
        assert!(p.store(5, 1, &mut spare).is_ok());
        PlaneStore::<u64>::prepare(&mut p, 2);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn arena_boundary_copies_encoded_spans() {
        let mut p: ArenaPlane<Vec<u64>> = ArenaPlane::new(6);
        let mut spare: Vec<Vec<u64>> = Vec::new();
        // Shard view: plane covers global slots 10..16.
        assert!(p.store_ref(2, &vec![5, 6]).is_ok());
        assert!(p.store_ref(4, &vec![7]).is_ok());
        let boundary_slots = [12usize, 13, 14];
        let mut buf = <ArenaPlane<Vec<u64>> as PlaneStore<Vec<u64>>>::new_boundary(3);
        p.export_boundary(&boundary_slots, 10, &mut buf);
        assert_eq!(
            p.fetch(2, &mut spare),
            None,
            "exported slots must be drained"
        );
        assert_eq!(
            ArenaPlane::<Vec<u64>>::fetch_boundary(&mut buf, 0, &mut spare),
            Some(vec![5, 6])
        );
        assert_eq!(
            ArenaPlane::<Vec<u64>>::fetch_boundary(&mut buf, 0, &mut spare),
            None,
            "a position is consumed only once"
        );
        assert_eq!(
            ArenaPlane::<Vec<u64>>::fetch_boundary(&mut buf, 1, &mut spare),
            None
        );
        assert_eq!(
            ArenaPlane::<Vec<u64>>::fetch_boundary(&mut buf, 2, &mut spare),
            Some(vec![7])
        );
        // A re-export overwrites every position.
        p.reset_round();
        assert!(p.store_ref(3, &vec![8, 8]).is_ok());
        p.export_boundary(&boundary_slots, 10, &mut buf);
        assert_eq!(
            ArenaPlane::<Vec<u64>>::fetch_boundary(&mut buf, 0, &mut spare),
            None
        );
        assert_eq!(
            ArenaPlane::<Vec<u64>>::fetch_boundary(&mut buf, 1, &mut spare),
            Some(vec![8, 8])
        );
    }

    #[test]
    fn inline_boundary_matches_arena_boundary_semantics() {
        let mut p: MessagePlane<u64> = MessagePlane::new(4);
        assert!(p.put(1, 42).is_ok());
        let mut buf = <MessagePlane<u64> as PlaneStore<u64>>::new_boundary(2);
        let mut spare = Vec::new();
        p.export_boundary(&[1, 2], 0, &mut buf);
        assert_eq!(
            MessagePlane::<u64>::fetch_boundary(&mut buf, 0, &mut spare),
            Some(42)
        );
        assert_eq!(
            MessagePlane::<u64>::fetch_boundary(&mut buf, 1, &mut spare),
            None
        );
    }

    /// A `Vec<u8>` of `n` items encodes to `1 + n` bytes (one length varint
    /// below 128 plus the raw bytes), so payload sizes pick the encoded
    /// length exactly — the handle the threshold tests steer with.
    fn bytes_msg(encoded_len: usize) -> Vec<u8> {
        vec![0xAB; encoded_len - 1]
    }

    #[test]
    fn hybrid_inline_and_spill_round_trip_across_the_threshold() {
        let mut p: HybridPlane<Vec<u8>> = HybridPlane::new(8);
        assert_eq!(p.len(), 8);
        assert!(!p.is_empty());
        let mut spare: Vec<Vec<u8>> = Vec::new();
        // 15 encoded bytes: the last inline size.  16: the first spill.
        let inline_msg = bytes_msg(15);
        let spill_msg = bytes_msg(16);
        assert!(p.store_ref(0, &inline_msg).is_ok());
        assert_eq!(p.spill_bytes(), 0, "inline stores must not touch the arena");
        assert!(p.store(1, spill_msg.clone(), &mut spare).is_ok());
        assert_eq!(p.spill_bytes(), 16, "over-threshold stores must spill");
        assert_eq!(
            PlaneStore::store(&mut p, 1, bytes_msg(3), &mut spare),
            Err(SlotOccupied { slot: 1, len: 8 }),
            "duplicate slot must be rejected"
        );
        assert_eq!(p.fetch(0, &mut spare), Some(inline_msg));
        assert_eq!(p.fetch(0, &mut spare), None, "delivered once");
        assert_eq!(p.fetch(1, &mut spare), Some(spill_msg), "first write wins");
        p.reset_round();
        assert_eq!(p.spill_bytes(), 0, "reset_round must empty the arena");
    }

    #[test]
    fn hybrid_prepare_drops_stale_state_and_resizes() {
        let mut p: HybridPlane<u64> = HybridPlane::new(3);
        let mut spare = Vec::new();
        assert!(p.store(1, 7, &mut spare).is_ok());
        PlaneStore::<u64>::prepare(&mut p, 3);
        assert_eq!(p.fetch(1, &mut spare), None, "prepare must drop messages");
        assert!(p.store(1, 8, &mut spare).is_ok(), "occupancy must reset");
        PlaneStore::<u64>::prepare(&mut p, 6);
        assert_eq!(p.len(), 6);
        assert!(p.store(5, 1, &mut spare).is_ok());
        PlaneStore::<u64>::prepare(&mut p, 2);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn hybrid_boundary_ships_cells_and_rebases_spills() {
        let mut p: HybridPlane<Vec<u8>> = HybridPlane::new(6);
        let mut spare: Vec<Vec<u8>> = Vec::new();
        // Shard view: plane covers global slots 10..16.  One inline, one
        // spilled message among the boundary slots.
        let inline_msg = bytes_msg(4);
        let spill_msg = bytes_msg(30);
        assert!(p.store_ref(2, &inline_msg).is_ok());
        assert!(p.store_ref(4, &spill_msg).is_ok());
        let boundary_slots = [12usize, 13, 14];
        let mut buf = <HybridPlane<Vec<u8>> as PlaneStore<Vec<u8>>>::new_boundary(3);
        p.export_boundary(&boundary_slots, 10, &mut buf);
        assert_eq!(p.fetch(2, &mut spare), None, "exported slots are drained");
        assert_eq!(
            HybridPlane::<Vec<u8>>::fetch_boundary(&mut buf, 0, &mut spare),
            Some(inline_msg)
        );
        assert_eq!(
            HybridPlane::<Vec<u8>>::fetch_boundary(&mut buf, 0, &mut spare),
            None,
            "a position is consumed only once"
        );
        assert_eq!(
            HybridPlane::<Vec<u8>>::fetch_boundary(&mut buf, 1, &mut spare),
            None
        );
        assert_eq!(
            HybridPlane::<Vec<u8>>::fetch_boundary(&mut buf, 2, &mut spare),
            Some(spill_msg)
        );
        // A re-export overwrites every position.
        p.reset_round();
        assert!(p.store_ref(3, &bytes_msg(8)).is_ok());
        p.export_boundary(&boundary_slots, 10, &mut buf);
        assert_eq!(
            HybridPlane::<Vec<u8>>::fetch_boundary(&mut buf, 0, &mut spare),
            None
        );
        assert_eq!(
            HybridPlane::<Vec<u8>>::fetch_boundary(&mut buf, 1, &mut spare),
            Some(bytes_msg(8))
        );
    }

    #[test]
    fn backing_labels_round_trip_and_cover_all() {
        for backing in Backing::ALL {
            assert_eq!(backing.as_str().parse::<Backing>(), Ok(backing));
            assert_eq!(backing.to_string(), backing.as_str());
        }
        let err = "mmap".parse::<Backing>().unwrap_err();
        assert!(err.to_string().contains("mmap"));
        assert!(err.to_string().contains("hybrid"));
    }
}
