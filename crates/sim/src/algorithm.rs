//! The node-program abstraction.
//!
//! A distributed algorithm is a *factory of node programs*: one
//! [`NodeAlgorithm`] value per node, each seeing only its [`LocalView`].
//! The runtime drives all node programs in lockstep rounds.

use crate::message::BitSized;
use lma_graph::{Port, Weight};

/// What a node is allowed to know about the network a priori (the paper's
/// model, §1): its identifier, the total number of nodes `n` (standard common
/// knowledge, needed by the paper's round-padding argument), and the weight of
/// each incident edge addressed by local port number.
///
/// Deliberately absent: neighbour identifiers, neighbour degrees, global edge
/// ids, topology.  Anything else a node learns must arrive in messages (or in
/// its advice string, which the `lma-advice` crate passes to the node program
/// when constructing it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalView {
    /// The simulator's dense index for this node.  Exposed so that outputs
    /// can be collated; node programs must not base decisions on it (use
    /// [`LocalView::id`] instead, which is the model's identifier).
    pub node: usize,
    /// The node's identifier (not necessarily distinct).
    pub id: u64,
    /// Common knowledge: the number of nodes in the network.
    pub n: usize,
    /// `(port, weight)` for each incident edge, indexed by port.
    pub incident: Vec<(Port, Weight)>,
}

impl LocalView {
    /// The node's degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.incident.len()
    }

    /// Weight of the incident edge at `port`.
    #[must_use]
    pub fn weight_at(&self, port: Port) -> Weight {
        self.incident[port].1
    }

    /// Ports sorted by `(weight, port)` — the local tie-breaking order the
    /// paper uses throughout.
    #[must_use]
    pub fn ports_by_weight(&self) -> Vec<Port> {
        let mut ports: Vec<Port> = (0..self.degree()).collect();
        ports.sort_by_key(|&p| (self.incident[p].1, p));
        ports
    }
}

/// Messages put on the wire by one node in one round: `(port, message)`
/// pairs.  At most one message per port per round (the model's "sends through
/// each of its incident edges a message").
pub type Outbox<M> = Vec<(Port, M)>;

/// A per-node program executed by the runtime.
///
/// The life cycle is:
///
/// 1. [`NodeAlgorithm::init`] is called once; it may already produce output
///    (0-round algorithms) and returns the messages to send in round 1.
/// 2. For each round `r = 1, 2, …` the runtime delivers the messages and
///    calls [`NodeAlgorithm::round`], which returns the messages for round
///    `r + 1`.
/// 3. The run stops when every node reports [`NodeAlgorithm::is_done`]
///    (a node that is done should return an empty outbox).
///
/// The round complexity reported by the runtime is the number of times
/// messages were exchanged, i.e. an algorithm that terminates inside `init`
/// has round complexity 0.
pub trait NodeAlgorithm: Send {
    /// Message type exchanged by this algorithm (`'static` so executors can
    /// pool and exchange message buffers across threads and runs).
    type Msg: Clone + Send + Sync + BitSized + 'static;
    /// Per-node output type.
    type Output: Clone + Send;

    /// One-time initialization; returns the messages to send in round 1.
    fn init(&mut self, view: &LocalView) -> Outbox<Self::Msg>;

    /// Executes one round: `inbox` holds the messages received this round as
    /// `(receiving port, message)` pairs sorted by port — a borrowed slice of
    /// the runtime's flat gather buffer, valid only for the duration of the
    /// call.  The return value holds the messages to send next round.
    fn round(
        &mut self,
        view: &LocalView,
        round: usize,
        inbox: &[(Port, Self::Msg)],
    ) -> Outbox<Self::Msg>;

    /// True when the node has produced its final output and will not send
    /// further messages.
    fn is_done(&self) -> bool;

    /// The node's output, once done.
    fn output(&self) -> Option<Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_view_helpers() {
        let view = LocalView {
            node: 3,
            id: 30,
            n: 8,
            incident: vec![(0, 9), (1, 2), (2, 9), (3, 1)],
        };
        assert_eq!(view.degree(), 4);
        assert_eq!(view.weight_at(2), 9);
        assert_eq!(view.ports_by_weight(), vec![3, 1, 0, 2]);
    }
}
