//! The node-program abstraction.
//!
//! A distributed algorithm is a *factory of node programs*: one
//! [`NodeAlgorithm`] value per node, each seeing only its [`LocalView`].
//! The runtime drives all node programs in lockstep rounds.

use crate::message::BitSized;
use crate::wire::Wire;
use lma_graph::{Port, Weight};

/// What a node is allowed to know about the network a priori (the paper's
/// model, §1): its identifier, the total number of nodes `n` (standard common
/// knowledge, needed by the paper's round-padding argument), and the weight of
/// each incident edge addressed by local port number.
///
/// Deliberately absent: neighbour identifiers, neighbour degrees, global edge
/// ids, topology.  Anything else a node learns must arrive in messages (or in
/// its advice string, which the `lma-advice` crate passes to the node program
/// when constructing it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalView {
    /// The simulator's dense index for this node.  Exposed so that outputs
    /// can be collated; node programs must not base decisions on it (use
    /// [`LocalView::id`] instead, which is the model's identifier).
    pub node: usize,
    /// The node's identifier (not necessarily distinct).
    pub id: u64,
    /// Common knowledge: the number of nodes in the network.
    pub n: usize,
    /// `(port, weight)` for each incident edge, indexed by port.
    pub incident: Vec<(Port, Weight)>,
}

impl LocalView {
    /// The node's degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.incident.len()
    }

    /// Weight of the incident edge at `port`.
    #[must_use]
    pub fn weight_at(&self, port: Port) -> Weight {
        self.incident[port].1
    }

    /// Ports sorted by `(weight, port)` — the local tie-breaking order the
    /// paper uses throughout.
    #[must_use]
    pub fn ports_by_weight(&self) -> Vec<Port> {
        let mut ports: Vec<Port> = (0..self.degree()).collect();
        ports.sort_by_key(|&p| (self.incident[p].1, p));
        ports
    }
}

/// Messages put on the wire by one node in one round: `(port, message)`
/// pairs.  At most one message per port per round (the model's "sends through
/// each of its incident edges a message").
pub type Outbox<M> = Vec<(Port, M)>;

/// Where one node's outgoing messages go — a send target handed to
/// [`NodeAlgorithm::init_into`] / [`NodeAlgorithm::round_into`].
///
/// The executors back a sink directly with the message plane, so a message
/// sent through it is validated, accounted and stored (or, on the arena
/// backing, *encoded*) immediately, with no intermediate outbox vector.
/// [`MsgSink::send_ref`] is the broadcast fast path: the same message can go
/// out of every port without being cloned per port — the arena backing
/// encodes straight from the reference, which is what makes gossip-style
/// algorithms allocation-free in steady state.
///
/// Sends after a node's first malformed message (bad port, duplicate port,
/// enforced CONGEST violation) are ignored; the run reports the first
/// offense exactly as it always has.
pub struct MsgSink<'a, M> {
    target: &'a mut dyn SendSlot<M>,
    sent: usize,
}

impl<'a, M> MsgSink<'a, M> {
    /// A sink over a raw send target (executor-internal).
    pub(crate) fn new(target: &'a mut dyn SendSlot<M>) -> Self {
        Self { target, sent: 0 }
    }

    /// Sends `msg` through local port `port`, consuming it.
    pub fn send(&mut self, port: Port, msg: M) {
        self.sent += 1;
        self.target.send(port, msg);
    }

    /// Sends a copy of `msg` through local port `port` without consuming
    /// it — use this to broadcast one value through many ports.  The inline
    /// plane backing clones; the arena backing encodes from the reference
    /// and allocates nothing.
    pub fn send_ref(&mut self, port: Port, msg: &M) {
        self.sent += 1;
        self.target.send_ref(port, msg);
    }

    /// How many messages have been sent through this sink (one sink spans
    /// exactly one `init`/`round` call, so this is "did I send anything
    /// this round").
    #[must_use]
    pub fn sent(&self) -> usize {
        self.sent
    }
}

/// The executor-facing half of [`MsgSink`]: implemented by the live scatter
/// path of each executor and by plain vectors (outbox collection).
pub(crate) trait SendSlot<M> {
    fn send(&mut self, port: Port, msg: M);
    fn send_ref(&mut self, port: Port, msg: &M);
}

impl<M: Clone> SendSlot<M> for Vec<(Port, M)> {
    fn send(&mut self, port: Port, msg: M) {
        self.push((port, msg));
    }

    fn send_ref(&mut self, port: Port, msg: &M) {
        self.push((port, msg.clone()));
    }
}

/// Runs `fill` against a vector-backed sink and returns the collected
/// outbox.  This is the bridge for algorithms that implement the sink-based
/// [`NodeAlgorithm::round_into`] as their primary form: their
/// [`NodeAlgorithm::round`] can simply delegate here, so the push-based
/// reference executor (which consumes outbox vectors) sees the exact same
/// messages.
pub fn collect_outbox<M: Clone>(fill: impl FnOnce(&mut MsgSink<'_, M>)) -> Outbox<M> {
    let mut out: Outbox<M> = Vec::new();
    let mut sink = MsgSink::new(&mut out);
    fill(&mut sink);
    out
}

/// A per-node program executed by the runtime.
///
/// The life cycle is:
///
/// 1. [`NodeAlgorithm::init`] is called once; it may already produce output
///    (0-round algorithms) and returns the messages to send in round 1.
/// 2. For each round `r = 1, 2, …` the runtime delivers the messages and
///    calls [`NodeAlgorithm::round`], which returns the messages for round
///    `r + 1`.
/// 3. The run stops when every node reports [`NodeAlgorithm::is_done`]
///    (a node that is done should return an empty outbox).
///
/// The round complexity reported by the runtime is the number of times
/// messages were exchanged, i.e. an algorithm that terminates inside `init`
/// has round complexity 0.
pub trait NodeAlgorithm: Send {
    /// Message type exchanged by this algorithm (`'static` so executors can
    /// pool and exchange message buffers across threads and runs; [`Wire`]
    /// so any program can run on the arena plane backing).
    type Msg: Clone + Send + Sync + BitSized + Wire + 'static;
    /// Per-node output type.
    type Output: Clone + Send;

    /// Opt-in marker for sparse frontier execution (see
    /// [`crate::frontier`]): `true` promises that a [`NodeAlgorithm::round`]
    /// call with an **empty inbox is a no-op** — no state change, no sends,
    /// no dependence on the round number.  Under that contract the executors
    /// may skip quiet nodes entirely (gathering only the round's *frontier*,
    /// the nodes that actually received a message), which turns
    /// O(n · diameter) floods into O(edges-touched) without changing any
    /// observable output.
    ///
    /// The default is `false`: programs that compute on silence (quiet-round
    /// counters, unconditional countdowns — e.g. `MaxFlood`) keep today's
    /// every-node-every-round schedule untouched.  Opting in falsely breaks
    /// the run's semantics, so only set this when the contract genuinely
    /// holds.
    const MESSAGE_DRIVEN: bool = false;

    /// Per-instance form of [`NodeAlgorithm::MESSAGE_DRIVEN`]: a node whose
    /// program answers `false` here is treated as *eager* — kept on the
    /// frontier every round even when its inbox is empty.  The default
    /// mirrors the type-level constant; mixed fleets (some nodes
    /// message-driven, some eager) override this per instance.  Must be
    /// constant over the program's lifetime, and must never answer `true`
    /// when the type-level constant is `false`.
    fn message_driven(&self) -> bool {
        Self::MESSAGE_DRIVEN
    }

    /// One-time initialization; returns the messages to send in round 1.
    fn init(&mut self, view: &LocalView) -> Outbox<Self::Msg>;

    /// Executes one round: `inbox` holds the messages received this round as
    /// `(receiving port, message)` pairs sorted by port — a borrowed slice of
    /// the runtime's flat gather buffer, valid only for the duration of the
    /// call.  The return value holds the messages to send next round.
    fn round(
        &mut self,
        view: &LocalView,
        round: usize,
        inbox: &[(Port, Self::Msg)],
    ) -> Outbox<Self::Msg>;

    /// Sink-based form of [`NodeAlgorithm::init`]: emit the round-1 messages
    /// directly into `out` instead of materializing an outbox vector.
    ///
    /// This is what the plane executors actually call.  The default bridges
    /// to [`NodeAlgorithm::init`], so ordinary algorithms implement only the
    /// vector form; allocation-sensitive algorithms (gossip with `Vec`
    /// payloads) override this and [`NodeAlgorithm::round_into`] as their
    /// primary form — typically broadcasting a reusable message with
    /// [`MsgSink::send_ref`] — and delegate the vector form through
    /// [`collect_outbox`].  **Override both or neither of each pair**: the
    /// two forms must emit the same messages in the same order (the
    /// `runtime_equivalence` suite compares executors that call different
    /// forms).
    fn init_into(&mut self, view: &LocalView, out: &mut MsgSink<'_, Self::Msg>) {
        for (port, msg) in self.init(view) {
            out.send(port, msg);
        }
    }

    /// Sink-based form of [`NodeAlgorithm::round`]; see
    /// [`NodeAlgorithm::init_into`] for the contract.
    fn round_into(
        &mut self,
        view: &LocalView,
        round: usize,
        inbox: &[(Port, Self::Msg)],
        out: &mut MsgSink<'_, Self::Msg>,
    ) {
        for (port, msg) in self.round(view, round, inbox) {
            out.send(port, msg);
        }
    }

    /// True when the node has produced its final output and will not send
    /// further messages.
    fn is_done(&self) -> bool;

    /// The node's output, once done.
    fn output(&self) -> Option<Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_view_helpers() {
        let view = LocalView {
            node: 3,
            id: 30,
            n: 8,
            incident: vec![(0, 9), (1, 2), (2, 9), (3, 1)],
        };
        assert_eq!(view.degree(), 4);
        assert_eq!(view.weight_at(2), 9);
        assert_eq!(view.ports_by_weight(), vec![3, 1, 0, 2]);
    }
}
