//! The wire codec: byte encodings for message payloads.
//!
//! The arena-backed message plane ([`crate::plane::ArenaPlane`]) stores every
//! message as a contiguous byte span inside a per-round bump buffer instead
//! of an in-memory `Option<M>` slot.  That requires a codec: [`Wire`] types
//! know how to *encode* themselves onto the end of a byte buffer and how to
//! *decode* themselves back from a [`WireReader`] over the stored span.
//!
//! Design points:
//!
//! * **Derived for free for POD payloads** — implementations for the
//!   primitive types, tuples, `Option<T>` and `Vec<T>` compose, and the
//!   [`wire_struct!`](crate::wire_struct) macro derives a field-by-field
//!   codec for plain structs, so only genuinely structured messages (enums,
//!   recursive trees) need a hand-written impl.
//! * **In-process only** — the bytes never leave the simulator, so the
//!   format carries no version header and decoding *panics* on malformed
//!   input (which can only mean a codec bug; the `wire_roundtrip` proptest
//!   suite pins `decode ∘ encode = id` for every implementation in the
//!   workspace).
//! * **Reuse-friendly** — [`Wire::decode_into`] overwrites an existing value
//!   in place; the `Vec<T>` implementation reuses the vector's allocation,
//!   which is what makes arena-backed gossip allocation-free in steady state
//!   (the executor recycles gathered messages through a spare pool and
//!   decodes into them).
//! * **Honest sizing** — every encoding is at most a constant factor larger
//!   than the message's [`BitSized`](crate::message::BitSized) accounting:
//!   the round-trip suite also pins `bit_size() <= 8 * encoded_len` so the
//!   arena can never silently blow up the CONGEST bookkeeping's idea of a
//!   message.
//!
//! Integers use LEB128 varints, so the common small values (ports, node
//! identifiers, weights) cost one or two bytes.

/// Appends `x` to `out` as a LEB128 varint (7 payload bits per byte, high
/// bit = continuation).
pub fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8; // lint: allow(codec-cast) — masked to 7 bits, cannot truncate
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A cursor over one encoded message span.
///
/// All read methods panic on truncated input: spans are produced by
/// [`Wire::encode`] in the same process, so running out of bytes is a codec
/// bug, not an input error.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at its start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Reads one byte.
    pub fn byte(&mut self) -> u8 {
        let b = self.buf[self.pos]; // lint: allow(codec-panic) — trusted in-process span; socket bytes go through serve's CheckedReader
        self.pos += 1;
        b
    }

    /// Reads one LEB128 varint.
    pub fn varint(&mut self) -> u64 {
        let mut x = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte();
            x |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return x;
            }
            shift += 7;
            // lint: allow(codec-panic) — trusted in-process span; socket bytes go through serve's CheckedReader
            assert!(shift < 64, "varint longer than 64 bits");
        }
    }

    /// Reads `n` raw bytes as a slice — one bounds check for a whole block,
    /// so fixed-stride payload codecs can decode field-by-field inside the
    /// block with no further checks.
    pub fn bytes(&mut self, n: usize) -> &'a [u8] {
        let span = &self.buf[self.pos..self.pos + n]; // lint: allow(codec-panic) — trusted in-process span; socket bytes go through serve's CheckedReader
        self.pos += n;
        span
    }

    /// True when every byte of the span has been consumed (used by the
    /// plane's debug assertions: a decode must consume its span exactly).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// A message payload with a byte encoding (see the module docs).
///
/// Every [`crate::NodeAlgorithm::Msg`] must implement `Wire` so any program
/// can run on either plane backing ([`crate::plane::Backing`]); programs
/// that only ever use the inline backing still pay nothing — the codec is
/// invoked solely by the arena plane.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value, advancing the reader past it.
    fn decode(r: &mut WireReader<'_>) -> Self;

    /// Decodes one value *over* `self`, reusing `self`'s allocations where
    /// possible (the default just replaces `self`; containers override it).
    fn decode_into(&mut self, r: &mut WireReader<'_>) {
        *self = Self::decode(r);
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_r: &mut WireReader<'_>) -> Self {}
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        r.byte() != 0
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        r.byte()
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, u64::from(*self));
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        // lint: allow(codec-panic) — trusted in-process span; socket bytes go through serve's CheckedReader
        u32::try_from(r.varint()).expect("u32 varint out of range")
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, *self);
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        r.varint()
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, *self as u64); // lint: allow(codec-cast) — usize → u64 is lossless on every supported target
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        // lint: allow(codec-panic) — trusted in-process span; socket bytes go through serve's CheckedReader
        usize::try_from(r.varint()).expect("usize varint out of range")
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        (r.byte() != 0).then(|| T::decode(r))
    }

    fn decode_into(&mut self, r: &mut WireReader<'_>) {
        if r.byte() == 0 {
            *self = None;
        } else {
            match self {
                Some(v) => v.decode_into(r),
                None => *self = Some(T::decode(r)),
            }
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64); // lint: allow(codec-cast) — usize → u64 is lossless on every supported target
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        // lint: allow(codec-panic) — trusted in-process span; socket bytes go through serve's CheckedReader
        let len = usize::try_from(r.varint()).expect("length varint out of range");
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(r));
        }
        v
    }

    fn decode_into(&mut self, r: &mut WireReader<'_>) {
        // Reuse the allocation: after the first few rounds prime the
        // capacity, steady-state decodes of flat item types allocate
        // nothing.
        // lint: allow(codec-panic) — trusted in-process span; socket bytes go through serve's CheckedReader
        let len = usize::try_from(r.varint()).expect("length varint out of range");
        self.clear();
        self.reserve(len);
        for _ in 0..len {
            self.push(T::decode(r));
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64); // lint: allow(codec-cast) — usize → u64 is lossless on every supported target
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        // lint: allow(codec-panic) — trusted in-process span; socket bytes go through serve's CheckedReader
        let len = usize::try_from(r.varint()).expect("length varint out of range");
        // lint: allow(codec-panic) — trusted in-process span; socket bytes go through serve's CheckedReader
        String::from_utf8(r.bytes(len).to_vec()).expect("string bytes were not UTF-8")
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        (A::decode(r), B::decode(r))
    }

    fn decode_into(&mut self, r: &mut WireReader<'_>) {
        self.0.decode_into(r);
        self.1.decode_into(r);
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        (A::decode(r), B::decode(r), C::decode(r))
    }

    fn decode_into(&mut self, r: &mut WireReader<'_>) {
        self.0.decode_into(r);
        self.1.decode_into(r);
        self.2.decode_into(r);
    }
}

/// Derives a field-by-field [`Wire`] implementation for a plain struct with
/// named fields — the "derived for free" path for POD message types:
///
/// ```ignore
/// lma_sim::wire_struct!(EdgeFact { a, b, w });
/// ```
///
/// Fields are encoded in the listed order; every field type must itself
/// implement [`Wire`].
#[macro_export]
macro_rules! wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                $( $crate::wire::Wire::encode(&self.$field, out); )+
            }

            fn decode(r: &mut $crate::wire::WireReader<'_>) -> Self {
                Self { $( $field: $crate::wire::Wire::decode(r) ),+ }
            }

            fn decode_into(&mut self, r: &mut $crate::wire::WireReader<'_>) {
                $( $crate::wire::Wire::decode_into(&mut self.$field, r); )+
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) -> usize {
        let mut bytes = Vec::new();
        v.encode(&mut bytes);
        let mut r = WireReader::new(&bytes);
        assert_eq!(T::decode(&mut r), v);
        assert!(r.is_exhausted(), "decode must consume the span exactly");
        bytes.len()
    }

    #[test]
    fn varint_edges() {
        for x in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, x);
            assert!(out.len() <= 10);
            assert_eq!(WireReader::new(&out).varint(), x);
        }
    }

    #[test]
    fn string_round_trips() {
        assert_eq!(round_trip(String::new()), 1);
        round_trip("flood".to_string());
        round_trip("ünïcodé — 16 bytes?".to_string());
        // Length is the byte length, varint-prefixed like `Vec<u8>`.
        let mut bytes = Vec::new();
        "ab".to_string().encode(&mut bytes);
        assert_eq!(bytes, vec![2, b'a', b'b']);
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(());
        round_trip(true);
        round_trip(false);
        round_trip(7u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(0usize);
        round_trip(Some(9u64));
        round_trip(None::<u64>);
        round_trip(vec![1u64, 2, 3]);
        round_trip((4u64, true));
        round_trip((1u64, 2u64, 3u64));
    }

    #[test]
    fn decode_into_reuses_vec_allocation() {
        let big = vec![5u64; 64];
        let mut bytes = Vec::new();
        big.encode(&mut bytes);
        let mut target: Vec<u64> = Vec::with_capacity(64);
        target.decode_into(&mut WireReader::new(&bytes));
        assert_eq!(target, big);
        let ptr = target.as_ptr();
        let small = vec![9u64; 3];
        bytes.clear();
        small.encode(&mut bytes);
        target.decode_into(&mut WireReader::new(&bytes));
        assert_eq!(target, small);
        assert_eq!(target.as_ptr(), ptr, "decode_into must keep the buffer");
    }

    #[test]
    #[should_panic(expected = "varint longer than 64 bits")]
    fn over_long_varint_panics() {
        let bytes = [0x80u8; 11];
        WireReader::new(&bytes).varint();
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Sample {
        a: u64,
        b: Vec<u32>,
        c: bool,
    }

    crate::wire_struct!(Sample { a, b, c });

    #[test]
    fn wire_struct_macro_derives_field_order_codec() {
        let s = Sample {
            a: 77,
            b: vec![1, 2, 3],
            c: true,
        };
        round_trip(s.clone());
        let mut bytes = Vec::new();
        s.encode(&mut bytes);
        let mut other = Sample {
            a: 0,
            b: Vec::new(),
            c: false,
        };
        other.decode_into(&mut WireReader::new(&bytes));
        assert_eq!(other, s);
    }
}
