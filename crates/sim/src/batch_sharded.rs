//! The sharded batch executor: shard × lane tiling over lane-striped
//! planes.
//!
//! Structure and protocol are exactly [`crate::sharded`]'s — contiguous
//! shards, private double-buffered planes per worker, parity-alternating
//! exchange buffers (cache-line padded, created empty and first-touched by
//! their producing worker; see the cache-hygiene notes there), one barrier
//! cycle per round with the leader merging per-shard reports in shard
//! order — with one extra dimension: every
//! worker's planes are [`BatchPlaneStore`]s carrying all `W` lanes of the
//! shard's slots, every report and every piece of leader state is
//! per-lane, and the boundary exchange ships **whole lane-groups per
//! boundary slot** (the lane-striped layout keeps a slot's `W` copies
//! contiguous, so one [`export_boundary`](BatchPlaneStore::export_boundary)
//! pass moves the entire batch's cross-shard traffic for a shard pair).
//!
//! Lane lifecycles are coordinated by the leader: when a lane's global
//! done-count reaches `n` (or the lane commits a fatal error), the leader
//! marks it finished in the shared done-bitmask and the workers drain that
//! lane's stripe from their private planes at the start of the next round —
//! the remaining lanes never stall.  Per-lane round accounting, error
//! commit order and the round-limit check replicate the single-run
//! coordinate step lane by lane, so each lane's outputs, stats, trace and
//! error are bit-identical to its own sequential (and single-run sharded)
//! execution.

use crate::algorithm::{LocalView, MsgSink, NodeAlgorithm};
use crate::batch::{run_batch_sequential, BatchScatter};
use crate::batch_plane::{expand_lanes, BatchPlaneStore};
use crate::frontier::{BatchFrontier, NodeSet};
use crate::lanes::LaneWords;
use crate::plane::{ArenaPlane, Backing, HybridPlane, MessagePlane, PlaneStore};
use crate::runtime::{PendingError, PendingRound, RunConfig, RunError, RunResult};
use crate::sharded::CachePadded;
use crate::stats::RunStats;
use crate::trace::TraceEvent;
use lma_graph::{Partition, Port, WeightedGraph};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Barrier, Mutex};

/// What the barrier leader tells every worker to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    /// Execute communication round `round` for the lanes still active.
    Work { round: usize },
    /// The whole batch is over; exit the worker loop.
    Stop,
}

/// One shard's per-lane contribution to the round about to be committed.
#[derive(Default)]
struct LaneReport {
    messages: u64,
    bits: u64,
    max_bits: usize,
    violations: u64,
    error: Option<PendingError>,
    events: Vec<TraceEvent>,
    done_delta: usize,
}

/// One shard's full report: one entry per lane, plus the shard-level panic
/// slot (a program panic aborts the whole batch, exactly as it would have
/// unwound out of the sequential lockstep loop).
struct ShardReport {
    lanes: Vec<LaneReport>,
    /// The shard's per-(node, lane) frontier mark words for the next round
    /// (full `n × wpn` shape — scatters mark remote destinations too),
    /// with the shard's own eager instances pre-ORed.  Empty unless the
    /// program opts into `MESSAGE_DRIVEN`.
    frontier: Vec<u64>,
    panic: Option<Box<dyn Any + Send>>,
}

/// Leader-owned per-lane state, read by the caller after the scope joins.
struct LaneControl {
    done_count: usize,
    stats: RunStats,
    events: Vec<TraceEvent>,
    failure: Option<RunError>,
}

struct Control {
    /// Committed rounds so far (global: every active lane is in lockstep).
    round: usize,
    lanes: Vec<LaneControl>,
    /// Lanes that stopped (success or failure).  Workers diff this against
    /// a local copy to find freshly finished stripes to drain.
    finished: LaneWords,
    command: Command,
    /// Whether the program opted into sparse frontier execution
    /// (`MESSAGE_DRIVEN`); gates all frontier work below.
    track_frontier: bool,
    /// The merged global frontier for the round just commanded, ORed from
    /// the shard reports in `coordinate`.
    frontier: BatchFrontier,
    /// The leader's dense↔sparse decision for the commanded round; workers
    /// read it together with the command.
    sparse: bool,
    panic: Option<Box<dyn Any + Send>>,
}

struct Shared<M, S: PlaneStore<M>> {
    barrier: Barrier,
    /// `pair_bufs[parity][s * k + t]`, dense over
    /// `partition.boundary(s, t).len() × lanes` positions (whole
    /// lane-groups per boundary slot).  Created empty; worker `s` sizes
    /// and first-touches its own `(s, *)` buffers before its first
    /// publish.
    pair_bufs: [Vec<CachePadded<Mutex<S::Boundary>>>; 2],
    /// `boundary_lanes[s * k + t]`: the lane-striped expansion of
    /// `partition.boundary(s, t)`, precomputed once for the whole batch.
    boundary_lanes: Vec<Vec<usize>>,
    reports: Vec<CachePadded<Mutex<ShardReport>>>,
    control: Mutex<Control>,
}

/// Runs `fleets` (lane-major: `fleets[l][u]`) with one worker per shard,
/// dispatching the plane backend on [`RunConfig::backing`].  Per-lane
/// semantics match [`crate::Runtime::run`] exactly.
pub(crate) fn run_batch_sharded<A: NodeAlgorithm>(
    graph: &WeightedGraph,
    config: RunConfig,
    partition: &Partition,
    views: &[LocalView],
    fleets: Vec<Vec<A>>,
) -> crate::batch::LaneResults<A::Output> {
    match config.backing {
        Backing::Inline => {
            run_batch_sharded_on::<MessagePlane<A::Msg>, A>(graph, config, partition, views, fleets)
        }
        Backing::Arena => {
            run_batch_sharded_on::<ArenaPlane<A::Msg>, A>(graph, config, partition, views, fleets)
        }
        Backing::Hybrid => {
            run_batch_sharded_on::<HybridPlane<A::Msg>, A>(graph, config, partition, views, fleets)
        }
    }
}

fn run_batch_sharded_on<S: PlaneStore<A::Msg>, A: NodeAlgorithm>(
    graph: &WeightedGraph,
    config: RunConfig,
    partition: &Partition,
    views: &[LocalView],
    fleets: Vec<Vec<A>>,
) -> crate::batch::LaneResults<A::Output> {
    let lanes = fleets.len();
    let n = graph.node_count();
    for fleet in &fleets {
        assert_eq!(fleet.len(), n, "one program per node per lane is required");
    }
    assert_eq!(
        partition.node_count(),
        n,
        "partition covers a different graph"
    );
    assert_eq!(
        partition.slot_count(),
        graph.csr().slot_count(),
        "partition covers a different slot space"
    );
    let k = partition.shard_count();
    if k <= 1 {
        return run_batch_sequential(graph, config, fleets);
    }
    let budget = config.model.budget();

    // Tile the fleets shard × lane: per_shard[s][l] holds lane l's programs
    // for shard s's contiguous node range, in node order.
    let mut per_shard: Vec<Vec<Vec<A>>> = (0..k).map(|_| Vec::with_capacity(lanes)).collect();
    for fleet in fleets {
        let mut drain = fleet.into_iter();
        for (s, shard) in per_shard.iter_mut().enumerate() {
            shard.push(
                drain
                    .by_ref()
                    .take(partition.node_range(s).len())
                    .collect::<Vec<A>>(),
            );
        }
    }

    // Buffers start empty on the caller thread; each worker sizes and
    // first-touches its own outgoing buffers (see `crate::sharded`).
    let make_bufs = || {
        (0..k * k)
            .map(|_| CachePadded(Mutex::new(S::Boundary::default())))
            .collect()
    };
    let mut boundary_lanes = Vec::with_capacity(k * k);
    for s in 0..k {
        for t in 0..k {
            boundary_lanes.push(expand_lanes(partition.boundary(s, t), lanes));
        }
    }
    let shared: Shared<A::Msg, S> = Shared {
        barrier: Barrier::new(k),
        pair_bufs: [make_bufs(), make_bufs()],
        boundary_lanes,
        reports: (0..k)
            .map(|_| {
                CachePadded(Mutex::new(ShardReport {
                    lanes: (0..lanes).map(|_| LaneReport::default()).collect(),
                    frontier: Vec::new(),
                    panic: None,
                }))
            })
            .collect(),
        control: Mutex::new(Control {
            round: 0,
            lanes: (0..lanes)
                .map(|_| LaneControl {
                    done_count: 0,
                    stats: RunStats::default(),
                    events: Vec::new(),
                    failure: None,
                })
                .collect(),
            finished: LaneWords::new(lanes),
            command: Command::Stop,
            track_frontier: A::MESSAGE_DRIVEN,
            frontier: if A::MESSAGE_DRIVEN {
                BatchFrontier::new(n, lanes)
            } else {
                BatchFrontier::default()
            },
            sparse: false,
            panic: None,
        }),
    };

    let mut shard_programs: Vec<Vec<Vec<A>>> = Vec::with_capacity(k);
    std::thread::scope(|scope| {
        let handles: Vec<_> = per_shard
            .into_iter()
            .enumerate()
            .map(|(s, progs)| {
                let shared = &shared;
                scope.spawn(move || {
                    worker(s, progs, graph, config, partition, views, shared, budget)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(progs) => shard_programs.push(progs),
                // A panic that escaped the worker's own catch (an executor
                // bug, not a program bug): re-raise it here.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let control = shared.control.into_inner().unwrap();
    if let Some(payload) = control.panic {
        std::panic::resume_unwind(payload);
    }
    control
        .lanes
        .into_iter()
        .enumerate()
        .map(|(l, lane)| {
            if let Some(err) = lane.failure {
                return Err(err);
            }
            let outputs = shard_programs
                .iter()
                .flat_map(|shard| shard[l].iter().map(NodeAlgorithm::output))
                .collect();
            let mut events = lane.events;
            Ok(RunResult {
                outputs,
                stats: lane.stats,
                trace: config.trace.then(|| {
                    events.sort_by_key(|e| (e.round, e.from, e.to));
                    events
                }),
            })
        })
        .collect()
}

/// The per-shard worker: init every lane, then one barrier cycle per round
/// until the leader commands a stop.  Returns the shard's lane programs
/// (`[l][i]`) so the caller can collate outputs.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn worker<S: PlaneStore<A::Msg>, A: NodeAlgorithm>(
    s: usize,
    mut programs: Vec<Vec<A>>,
    graph: &WeightedGraph,
    config: RunConfig,
    partition: &Partition,
    views: &[LocalView],
    shared: &Shared<A::Msg, S>,
    budget: Option<usize>,
) -> Vec<Vec<A>> {
    let lanes = programs.len();
    let k = partition.shard_count();
    let csr = graph.csr();
    let offsets = csr.offsets();
    let mirror = csr.mirror_table();
    let incident = csr.incident_flat();
    let nodes = partition.node_range(s);
    let slots = partition.slot_range(s);
    let slot_base = slots.start;

    let mut cur: BatchPlaneStore<A::Msg, S> = BatchPlaneStore::new(slots.len(), lanes);
    let mut next: BatchPlaneStore<A::Msg, S> = BatchPlaneStore::new(slots.len(), lanes);
    let mut inbox: Vec<(Port, A::Msg)> = Vec::new();
    let mut spare: Vec<A::Msg> = Vec::new();
    let mut pending: Vec<PendingRound> = (0..lanes).map(|_| PendingRound::default()).collect();
    let mut incoming: Vec<S::Boundary> = (0..k).map(|_| S::Boundary::default()).collect();
    // Lanes this worker knows to be finished (drained on first sight).
    let mut finished_seen = LaneWords::new(lanes);

    // Sparse frontier state (see `crate::frontier`): `local_front` collects
    // this shard's scatter marks (full `n × lanes` shape — remote
    // destinations too) with the shard's own eager instances pre-ORed;
    // `gather_front` is this round's merged global any-lane mask copied
    // from the leader.  Compiled away unless the program opts in.
    let n = partition.node_count();
    let mut local_front = BatchFrontier::default();
    let mut eager_front = BatchFrontier::default();
    let mut gather_front = NodeSet::default();
    let mut use_sparse = false;
    if A::MESSAGE_DRIVEN {
        eager_front = BatchFrontier::new(n, lanes);
        for (i, u) in nodes.clone().enumerate() {
            for (l, lane_programs) in programs.iter().enumerate() {
                if !lane_programs[i].message_driven() {
                    eager_front.mark(u, l);
                }
            }
        }
        local_front = eager_front.clone();
        gather_front = NodeSet::new(n);
    }

    // First-touch: allocate this shard's outgoing exchange buffers (both
    // parities) on this thread, before the first publish.  Consumers only
    // read them after the first barrier cycle, so this is race-free.
    for parity in 0..2 {
        for t in 0..k {
            let boundary = partition.boundary(s, t);
            if boundary.is_empty() {
                continue;
            }
            *shared.pair_bufs[parity][s * k + t].0.lock().unwrap() =
                BatchPlaneStore::<A::Msg, S>::new_boundary(boundary.len(), lanes);
        }
    }

    // Initialization: every lane's round-0 local computation producing
    // round-1 traffic, scattered into `cur` and drained into the parity-1
    // exchange buffers.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let mut done_delta = vec![0usize; lanes];
        for (i, u) in nodes.clone().enumerate() {
            for (l, lane_programs) in programs.iter_mut().enumerate() {
                let mut scatter = BatchScatter {
                    node: u,
                    base: offsets[u],
                    degree: offsets[u + 1] - offsets[u],
                    delivery_round: 1,
                    plane: &mut cur,
                    plane_offset: slot_base,
                    lane: l,
                    spare: &mut spare,
                    pending: &mut pending[l],
                    incident,
                    budget,
                    enforce_congest: config.enforce_congest,
                    trace: config.trace,
                    frontier: A::MESSAGE_DRIVEN.then_some(&mut local_front),
                };
                lane_programs[i].init_into(&views[u], &mut MsgSink::new(&mut scatter));
                if lane_programs[i].is_done() {
                    done_delta[l] += 1;
                }
            }
        }
        done_delta
    }));
    publish(
        s,
        shared,
        partition,
        &mut cur,
        slot_base,
        1,
        &mut pending,
        A::MESSAGE_DRIVEN.then_some(&local_front),
        caught,
    );
    if A::MESSAGE_DRIVEN {
        local_front.copy_from(&eager_front);
    }

    loop {
        let leader = shared.barrier.wait().is_leader();
        if leader {
            coordinate(shared, &config, partition.node_count(), budget);
        }
        shared.barrier.wait();
        let (round, finished) = {
            let ctl = shared.control.lock().unwrap();
            let round = match ctl.command {
                Command::Stop => break,
                Command::Work { round } => round,
            };
            if A::MESSAGE_DRIVEN {
                gather_front.copy_from(ctl.frontier.any());
                use_sparse = ctl.sparse;
            }
            (round, ctl.finished.clone())
        };
        // Drain the stripes of lanes the leader just retired: their final
        // (never-delivered) traffic is still in `cur`, and the arena's
        // round-reset asserts a fully drained plane.
        for l in finished.ones() {
            if !finished_seen.get(l) {
                cur.drain_lane(l, &mut spare);
            }
        }
        finished_seen = finished;
        let read_parity = round & 1;

        // Take this round's incoming exchange buffers whole; they are put
        // back after the gather pass.
        for (src, buf) in incoming.iter_mut().enumerate() {
            if src != s && !partition.boundary(src, s).is_empty() {
                *buf = std::mem::take(
                    &mut *shared.pair_bufs[read_parity][src * k + s].0.lock().unwrap(),
                );
            }
        }

        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut done_delta = vec![0usize; lanes];
            // The per-node gather → step body, expanded under both round
            // schedules.  The sparse branch walks only this shard's slice
            // of the merged any-lane mask: by the marking invariant a
            // skipped node's slots (private plane and exchange positions
            // alike) are empty in every lane, so skipping is a pure no-op.
            macro_rules! gather_step {
                ($i:expr, $v:expr) => {{
                    let i = $i;
                    let v = $v;
                    let base = offsets[v];
                    for (l, lane_programs) in programs.iter_mut().enumerate() {
                        if finished_seen.get(l) {
                            continue;
                        }
                        if S::RECYCLES {
                            spare.extend(inbox.drain(..).map(|(_, m)| m));
                        } else {
                            inbox.clear();
                        }
                        // Gather in port order: intra-shard mirrors from the
                        // private plane, cross-shard mirrors from the exchange
                        // buffers (lane-group position `pos × lanes + l`).
                        // Unconditional per active lane (done nodes too), so
                        // every live stripe is drained each round.
                        for (p, &sender_slot) in mirror[base..offsets[v + 1]].iter().enumerate() {
                            let msg = if slots.contains(&sender_slot) {
                                cur.fetch(sender_slot - slot_base, l, &mut spare)
                            } else {
                                let (src, pos) = partition
                                    .cross_ref(sender_slot)
                                    .expect("out-of-shard mirror slot must be a boundary slot");
                                BatchPlaneStore::<A::Msg, S>::fetch_boundary(
                                    &mut incoming[src],
                                    pos,
                                    l,
                                    lanes,
                                    &mut spare,
                                )
                            };
                            if let Some(msg) = msg {
                                inbox.push((p, msg));
                            }
                        }
                        if lane_programs[i].is_done() {
                            continue;
                        }
                        let mut scatter = BatchScatter {
                            node: v,
                            base,
                            degree: offsets[v + 1] - base,
                            delivery_round: round + 1,
                            plane: &mut next,
                            plane_offset: slot_base,
                            lane: l,
                            spare: &mut spare,
                            pending: &mut pending[l],
                            incident,
                            budget,
                            enforce_congest: config.enforce_congest,
                            trace: config.trace,
                            frontier: A::MESSAGE_DRIVEN.then_some(&mut local_front),
                        };
                        lane_programs[i].round_into(
                            &views[v],
                            round,
                            &inbox,
                            &mut MsgSink::new(&mut scatter),
                        );
                        if lane_programs[i].is_done() {
                            done_delta[l] += 1;
                        }
                    }
                }};
            }
            if use_sparse {
                for v in gather_front.ones_in(nodes.start, nodes.end) {
                    gather_step!(v - nodes.start, v);
                }
            } else {
                for (i, v) in nodes.clone().enumerate() {
                    gather_step!(i, v);
                }
            }
            done_delta
        }));

        // Return the incoming buffers for their producers to refill two
        // phases from now (stale finished-lane positions are overwritten by
        // the next export).
        for (src, buf) in incoming.iter_mut().enumerate() {
            if src != s && !partition.boundary(src, s).is_empty() {
                *shared.pair_bufs[read_parity][src * k + s].0.lock().unwrap() = std::mem::take(buf);
            }
        }

        std::mem::swap(&mut cur, &mut next);
        next.reset_round();
        publish(
            s,
            shared,
            partition,
            &mut cur,
            slot_base,
            (round + 1) & 1,
            &mut pending,
            A::MESSAGE_DRIVEN.then_some(&local_front),
            caught,
        );
        if A::MESSAGE_DRIVEN {
            local_front.copy_from(&eager_front);
        }
    }
    programs
}

/// Drains the boundary lane-groups of `plane` into this shard's outgoing
/// exchange buffers for `parity`, then publishes the shard's per-lane
/// report for the round (including its frontier marks when tracking).
#[allow(clippy::too_many_arguments)]
fn publish<M, S: PlaneStore<M>>(
    s: usize,
    shared: &Shared<M, S>,
    partition: &Partition,
    plane: &mut BatchPlaneStore<M, S>,
    slot_base: usize,
    parity: usize,
    pending: &mut [PendingRound],
    frontier: Option<&BatchFrontier>,
    caught: Result<Vec<usize>, Box<dyn Any + Send>>,
) {
    let k = partition.shard_count();
    let lanes = plane.lanes();
    if caught.is_ok() {
        for t in 0..k {
            let striped = &shared.boundary_lanes[s * k + t];
            if striped.is_empty() {
                continue;
            }
            let mut buf = shared.pair_bufs[parity][s * k + t].0.lock().unwrap();
            plane.export_boundary(striped, slot_base * lanes, &mut buf);
            drop(buf);
        }
    }
    let mut report = shared.reports[s].0.lock().unwrap();
    if let Some(front) = frontier {
        report.frontier.clear();
        report.frontier.extend_from_slice(front.marks());
    }
    for (l, p) in pending.iter_mut().enumerate() {
        let lane = &mut report.lanes[l];
        lane.messages = p.messages;
        lane.bits = p.bits;
        lane.max_bits = p.max_bits;
        lane.violations = p.violations;
        lane.error = p.error.take();
        lane.events = std::mem::take(&mut p.events);
        p.reset();
    }
    match caught {
        Ok(done_delta) => {
            for (l, delta) in done_delta.into_iter().enumerate() {
                report.lanes[l].done_delta = delta;
            }
        }
        Err(payload) => report.panic = Some(payload),
    }
}

/// Accumulated per-lane round traffic, merged from the shard reports.
#[derive(Default)]
struct LaneAgg {
    messages: u64,
    bits: u64,
    max_bits: usize,
    violations: u64,
    error: Option<PendingError>,
    events: Vec<TraceEvent>,
}

/// The barrier leader's merge step: fold the per-shard reports **in shard
/// order** into each lane's global state and decide the next command.
/// Per lane, the ordering reproduces the single-run coordinate exactly —
/// done-check, round-limit check, then the round commit (first pending
/// error in node order wins; stats and trace only on a clean commit) —
/// with finished lanes skipped so they drop out without stalling the rest.
fn coordinate<M, S: PlaneStore<M>>(
    shared: &Shared<M, S>,
    config: &RunConfig,
    n: usize,
    budget: Option<usize>,
) {
    let mut ctl = shared.control.lock().unwrap();
    let lanes = ctl.lanes.len();
    let mut agg: Vec<LaneAgg> = (0..lanes).map(|_| LaneAgg::default()).collect();
    let mut panic: Option<Box<dyn Any + Send>> = None;
    if ctl.track_frontier {
        ctl.frontier.clear_all();
    }
    for slot in shared.reports.iter() {
        let mut report = slot.0.lock().unwrap();
        if ctl.track_frontier {
            ctl.frontier.or_marks(&report.frontier);
        }
        for (l, lane) in report.lanes.iter_mut().enumerate() {
            ctl.lanes[l].done_count += lane.done_delta;
            lane.done_delta = 0;
            let a = &mut agg[l];
            a.messages += lane.messages;
            a.bits += lane.bits;
            a.max_bits = a.max_bits.max(lane.max_bits);
            a.violations += lane.violations;
            lane.messages = 0;
            lane.bits = 0;
            lane.max_bits = 0;
            lane.violations = 0;
            if a.error.is_none() {
                a.error = lane.error.take();
            } else {
                lane.error = None;
            }
            if config.trace {
                a.events.append(&mut lane.events);
            } else {
                lane.events.clear();
            }
        }
        if panic.is_none() {
            panic = report.panic.take();
        } else {
            report.panic = None;
        }
    }

    // A program panic preempts everything, exactly as it would have unwound
    // out of the sequential lockstep loop.
    if let Some(payload) = panic {
        ctl.panic = Some(payload);
        ctl.command = Command::Stop;
        return;
    }
    // Lane finalization first (the done-check of each lane's own loop): a
    // fully done lane completes before the round-limit check, and its
    // final-step traffic is dropped, never counted.
    for l in 0..lanes {
        if !ctl.finished.get(l) && ctl.lanes[l].done_count >= n {
            ctl.finished.set(l);
        }
    }
    if ctl.finished.count() == lanes {
        ctl.command = Command::Stop;
        return;
    }
    if ctl.round >= config.max_rounds {
        for l in 0..lanes {
            if !ctl.finished.get(l) {
                ctl.lanes[l].failure = Some(RunError::RoundLimitExceeded {
                    limit: config.max_rounds,
                });
                ctl.finished.set(l);
            }
        }
        ctl.command = Command::Stop;
        return;
    }
    ctl.round += 1;
    let round = ctl.round;
    // The global dense↔sparse decision for the round being commanded, plus
    // the lane-exact active counts each surviving lane records (identical
    // to its solo run's).
    let (sparse, lane_active) = if ctl.track_frontier {
        ctl.frontier.rebuild_any();
        let sparse = config.frontier.use_sparse(ctl.frontier.any().count(), n);
        ctl.sparse = sparse;
        let mut counts = vec![0; lanes];
        ctl.frontier.lane_counts(&mut counts);
        (sparse, counts)
    } else {
        (false, Vec::new())
    };
    for (l, a) in agg.iter_mut().enumerate() {
        if ctl.finished.get(l) {
            continue;
        }
        match a.error.take() {
            Some(PendingError::Malformed { node, port }) => {
                ctl.lanes[l].failure = Some(RunError::MalformedOutbox { node, port });
                ctl.finished.set(l);
            }
            Some(PendingError::Congest { bits }) => {
                ctl.lanes[l].failure = Some(RunError::CongestViolation {
                    round,
                    bits,
                    budget: budget.expect("congest error implies a budget"),
                });
                ctl.finished.set(l);
            }
            None => {
                ctl.lanes[l]
                    .stats
                    .record_round(a.messages, a.bits, a.max_bits, a.violations);
                if ctl.track_frontier {
                    ctl.lanes[l].stats.record_frontier(lane_active[l], sparse);
                }
                if config.trace {
                    let mut events = std::mem::take(&mut a.events);
                    ctl.lanes[l].events.append(&mut events);
                }
            }
        }
    }
    if ctl.finished.count() == lanes {
        ctl.command = Command::Stop;
    } else {
        ctl.command = Command::Work { round };
    }
}
