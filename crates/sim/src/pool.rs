//! Per-thread reuse of run buffers across runs.
//!
//! Experiment sweeps execute many runs on the same graph (seed sweeps, fault
//! trials, scheme comparisons).  Each run needs two message planes of `2m`
//! slots plus a gather buffer; allocating and freeing them per run is pure
//! overhead.  This module keeps one [`PlaneSet`] per message type in a
//! thread-local pool: [`Runtime::run`](crate::Runtime::run) checks the set
//! out at the start of a sequential run (resizing and clearing it — an
//! aborted run may have left messages behind) and returns it at the end, so
//! back-to-back runs on the same graph perform **zero** plane allocations
//! after the first.
//!
//! The pool is deliberately invisible in the API: it changes no observable
//! semantics, only the allocation profile.  [`stats`] exposes hit/miss
//! counters so tests and benches can assert the reuse actually happens.

use crate::plane::MessagePlane;
use lma_graph::Port;
use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// The reusable per-run buffers of the sequential executor: the two
/// double-buffered planes and the flat gather buffer.
pub(crate) struct PlaneSet<M> {
    /// Gather source (delivery) plane.
    pub cur: MessagePlane<M>,
    /// Scatter target plane for the next round.
    pub next: MessagePlane<M>,
    /// The per-node gather buffer handed to `NodeAlgorithm::round`.
    pub inbox: Vec<(Port, M)>,
}

impl<M> PlaneSet<M> {
    fn new(len: usize) -> Self {
        Self {
            cur: MessagePlane::new(len),
            next: MessagePlane::new(len),
            inbox: Vec::new(),
        }
    }

    fn prepare(&mut self, len: usize) {
        self.cur.prepare(len);
        self.next.prepare(len);
        self.inbox.clear();
    }
}

/// Cumulative pool counters for the current thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the pool (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh plane set.
    pub misses: u64,
}

thread_local! {
    static POOL: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
    static STATS: Cell<PoolStats> = const { Cell::new(PoolStats { hits: 0, misses: 0 }) };
}

/// Checks a plane set for message type `M` out of this thread's pool,
/// resized and cleared for `len` slots.
pub(crate) fn checkout<M: 'static>(len: usize) -> PlaneSet<M> {
    let reused = POOL.with(|pool| pool.borrow_mut().remove(&TypeId::of::<PlaneSet<M>>()));
    let mut stats = STATS.get();
    match reused.and_then(|boxed| boxed.downcast::<PlaneSet<M>>().ok()) {
        Some(mut set) => {
            stats.hits += 1;
            STATS.set(stats);
            set.prepare(len);
            *set
        }
        None => {
            stats.misses += 1;
            STATS.set(stats);
            PlaneSet::new(len)
        }
    }
}

/// Returns a plane set to this thread's pool for the next run to reuse.
pub(crate) fn give_back<M: 'static>(set: PlaneSet<M>) {
    POOL.with(|pool| {
        pool.borrow_mut()
            .insert(TypeId::of::<PlaneSet<M>>(), Box::new(set))
    });
}

/// This thread's cumulative pool counters.
#[must_use]
pub fn stats() -> PoolStats {
    STATS.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_previously_returned_sets() {
        let before = stats();
        let set: PlaneSet<u128> = checkout(8);
        give_back(set);
        let set: PlaneSet<u128> = checkout(16);
        assert_eq!(set.cur.len(), 16, "checkout must resize the reused set");
        give_back(set);
        let after = stats();
        assert!(after.hits > before.hits, "second checkout must be a hit");
        assert!(after.misses > before.misses, "first checkout must miss");
    }

    #[test]
    fn pool_is_keyed_by_message_type() {
        let a: PlaneSet<u16> = checkout(4);
        give_back(a);
        let b: PlaneSet<i16> = checkout(4);
        let a2: PlaneSet<u16> = checkout(4);
        assert_eq!(a2.cur.len(), 4);
        give_back(b);
        give_back(a2);
    }
}
