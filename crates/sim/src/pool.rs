//! Per-thread reuse of run buffers across runs.
//!
//! Experiment sweeps execute many runs on the same graph (seed sweeps, fault
//! trials, scheme comparisons).  Each run needs two message planes of `2m`
//! slots plus a gather buffer — and, on the arena backing, the byte arenas
//! and the spare-message recycling pool, both of which take a few rounds to
//! grow to their high-water mark.  Allocating and freeing all of that per
//! run is pure overhead.  This module keeps one `PlaneSet` per
//! `(message type, plane backing)` pair in a thread-local pool:
//! [`Runtime::run`](crate::Runtime::run) checks the set out at the start of
//! a sequential run (resizing and clearing it — an aborted run may have left
//! messages behind) and returns it at the end, so back-to-back runs on the
//! same graph perform **zero** plane (and, for the arena, zero codec-side)
//! allocations after the first.
//!
//! The pool is deliberately invisible in the API: it changes no observable
//! semantics, only the allocation profile.  [`stats`] exposes hit/miss
//! counters so tests and benches can assert the reuse actually happens.

use crate::batch_plane::BatchPlaneStore;
use crate::plane::PlaneStore;
use lma_graph::Port;
use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::collections::HashMap; // lint: allow(hash-iteration) — TypeId-keyed checkout map, never iterated

/// The reusable per-run buffers of the sequential executor: the two
/// double-buffered planes, the flat gather buffer, and the spare-message
/// pool serializing backends recycle through.
pub(crate) struct PlaneSet<M, S> {
    /// Gather source (delivery) plane.
    pub cur: S,
    /// Scatter target plane for the next round.
    pub next: S,
    /// The per-node gather buffer handed to `NodeAlgorithm::round`.
    pub inbox: Vec<(Port, M)>,
    /// Spent message values awaiting revival by `Wire::decode_into` (unused
    /// — always empty — on non-recycling backends).
    pub spare: Vec<M>,
}

impl<M, S: PlaneStore<M>> PlaneSet<M, S> {
    fn new(len: usize) -> Self {
        Self {
            cur: S::with_len(len),
            next: S::with_len(len),
            inbox: Vec::new(),
            spare: Vec::new(),
        }
    }

    fn prepare(&mut self, len: usize) {
        self.cur.prepare(len);
        self.next.prepare(len);
        if S::RECYCLES {
            // Stale gathered messages are still good capacity donors.
            self.spare.extend(self.inbox.drain(..).map(|(_, m)| m));
        } else {
            self.inbox.clear();
            self.spare.clear();
        }
    }
}

/// Cumulative pool counters for the current thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the pool (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh plane set.
    pub misses: u64,
}

thread_local! {
    // lint: allow(hash-iteration) — TypeId-keyed checkout map, never iterated
    static POOL: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
    static STATS: Cell<PoolStats> = const { Cell::new(PoolStats { hits: 0, misses: 0 }) };
}

/// Checks a plane set for message type `M` on backend `S` out of this
/// thread's pool, resized and cleared for `len` slots.
pub(crate) fn checkout<M: 'static, S: PlaneStore<M>>(len: usize) -> PlaneSet<M, S> {
    let reused = POOL.with(|pool| pool.borrow_mut().remove(&TypeId::of::<PlaneSet<M, S>>()));
    let mut stats = STATS.get();
    match reused.and_then(|boxed| boxed.downcast::<PlaneSet<M, S>>().ok()) {
        Some(mut set) => {
            stats.hits += 1;
            STATS.set(stats);
            set.prepare(len);
            *set
        }
        None => {
            stats.misses += 1;
            STATS.set(stats);
            PlaneSet::new(len)
        }
    }
}

/// Returns a plane set to this thread's pool for the next run to reuse.
pub(crate) fn give_back<M: 'static, S: PlaneStore<M>>(set: PlaneSet<M, S>) {
    POOL.with(|pool| {
        pool.borrow_mut()
            .insert(TypeId::of::<PlaneSet<M, S>>(), Box::new(set))
    });
}

/// This thread's cumulative pool counters.
#[must_use]
pub fn stats() -> PoolStats {
    STATS.get()
}

/// The batch executor's reusable buffers: the lane-striped plane pair plus
/// the shared gather buffer and spare pool — one entry per `(message type,
/// backing)` pair, pooled independently of the single-run sets (the inner
/// planes are `W×` larger, so swapping them into single-run service would
/// just thrash the resize path).
pub(crate) struct BatchSet<M, S: PlaneStore<M>> {
    /// Gather source (delivery) plane.
    pub cur: BatchPlaneStore<M, S>,
    /// Scatter target plane for the next round.
    pub next: BatchPlaneStore<M, S>,
    /// The per-`(node, lane)` gather buffer (cleared between lanes).
    pub inbox: Vec<(Port, M)>,
    /// Spent message values awaiting revival, shared by every lane.
    pub spare: Vec<M>,
}

impl<M, S: PlaneStore<M>> BatchSet<M, S> {
    fn new(slots: usize, lanes: usize) -> Self {
        Self {
            cur: BatchPlaneStore::new(slots, lanes),
            next: BatchPlaneStore::new(slots, lanes),
            inbox: Vec::new(),
            spare: Vec::new(),
        }
    }

    fn prepare(&mut self, slots: usize, lanes: usize) {
        self.cur.prepare(slots, lanes);
        self.next.prepare(slots, lanes);
        if S::RECYCLES {
            self.spare.extend(self.inbox.drain(..).map(|(_, m)| m));
        } else {
            self.inbox.clear();
            self.spare.clear();
        }
    }
}

/// Checks a batch plane set out of this thread's pool, resized and cleared
/// for `slots × lanes` striped slots.
pub(crate) fn checkout_batch<M: 'static, S: PlaneStore<M>>(
    slots: usize,
    lanes: usize,
) -> BatchSet<M, S> {
    let reused = POOL.with(|pool| pool.borrow_mut().remove(&TypeId::of::<BatchSet<M, S>>()));
    let mut stats = STATS.get();
    match reused.and_then(|boxed| boxed.downcast::<BatchSet<M, S>>().ok()) {
        Some(mut set) => {
            stats.hits += 1;
            STATS.set(stats);
            set.prepare(slots, lanes);
            *set
        }
        None => {
            stats.misses += 1;
            STATS.set(stats);
            BatchSet::new(slots, lanes)
        }
    }
}

/// Returns a batch plane set to this thread's pool for the next batch to
/// reuse.
pub(crate) fn give_back_batch<M: 'static, S: PlaneStore<M>>(set: BatchSet<M, S>) {
    POOL.with(|pool| {
        pool.borrow_mut()
            .insert(TypeId::of::<BatchSet<M, S>>(), Box::new(set))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::{ArenaPlane, MessagePlane};

    #[test]
    fn checkout_reuses_previously_returned_sets() {
        let before = stats();
        let set: PlaneSet<u128, MessagePlane<u128>> = checkout(8);
        give_back(set);
        let set: PlaneSet<u128, MessagePlane<u128>> = checkout(16);
        assert_eq!(set.cur.len(), 16, "checkout must resize the reused set");
        give_back(set);
        let after = stats();
        assert!(after.hits > before.hits, "second checkout must be a hit");
        assert!(after.misses > before.misses, "first checkout must miss");
    }

    #[test]
    fn pool_is_keyed_by_message_type() {
        let a: PlaneSet<u16, MessagePlane<u16>> = checkout(4);
        give_back(a);
        let b: PlaneSet<i16, MessagePlane<i16>> = checkout(4);
        let a2: PlaneSet<u16, MessagePlane<u16>> = checkout(4);
        assert_eq!(a2.cur.len(), 4);
        give_back(b);
        give_back(a2);
    }

    #[test]
    fn pool_is_keyed_by_backing_and_arena_sets_keep_their_spares() {
        let mut inline: PlaneSet<u64, MessagePlane<u64>> = checkout(4);
        inbox_fill(&mut inline.inbox);
        give_back(inline);
        let mut arena: PlaneSet<u64, ArenaPlane<u64>> = checkout(4);
        inbox_fill(&mut arena.inbox);
        arena.spare.push(7);
        give_back(arena);

        // Re-checkout: the inline set drops stale state, the arena set
        // converts stale inbox entries into spares.
        let inline: PlaneSet<u64, MessagePlane<u64>> = checkout(4);
        assert!(inline.inbox.is_empty() && inline.spare.is_empty());
        let arena: PlaneSet<u64, ArenaPlane<u64>> = checkout(4);
        assert!(arena.inbox.is_empty());
        assert_eq!(arena.spare.len(), 3, "spare + 2 recycled inbox messages");
        give_back(inline);
        give_back(arena);
    }

    fn inbox_fill(inbox: &mut Vec<(Port, u64)>) {
        inbox.push((0, 1));
        inbox.push((1, 2));
    }

    #[test]
    fn batch_sets_pool_independently_and_reshape_on_checkout() {
        let single: PlaneSet<u8, MessagePlane<u8>> = checkout(4);
        give_back(single);
        let batch: BatchSet<u8, MessagePlane<u8>> = checkout_batch(4, 3);
        assert_eq!(batch.cur.slots(), 4);
        assert_eq!(batch.cur.lanes(), 3);
        give_back_batch(batch);
        // Reuse must reshape to the new (slots, lanes) geometry.
        let batch: BatchSet<u8, MessagePlane<u8>> = checkout_batch(2, 8);
        assert_eq!(batch.next.slots(), 2);
        assert_eq!(batch.next.lanes(), 8);
        give_back_batch(batch);
        // The single-run set is still poolable under its own key.
        let single: PlaneSet<u8, MessagePlane<u8>> = checkout(4);
        assert_eq!(single.cur.len(), 4);
        give_back(single);
    }
}
