//! The synchronous round executor.
//!
//! The executor routes messages over a **pull-based, double-buffered flat
//! message plane** (see [`crate::plane::MessagePlane`]):
//!
//! * every `(node, port)` pair owns one preallocated slot in a flat buffer
//!   indexed by the graph's CSR slot space — senders scatter into their own
//!   slots, receivers gather through the CSR *mirror table*, so delivery
//!   moves each message exactly once and never clones it;
//! * two planes are swapped each round (current ↔ next), so the steady-state
//!   loop performs **no** per-round inbox-vector or hash-set allocations:
//!   the gather buffer, both planes, and the occupancy bitset are all
//!   allocated once before round 1 and reused;
//! * duplicate-port detection uses the plane's occupancy bitset (the seed
//!   implementation allocated a `HashSet<Port>` per node per round);
//! * termination uses a running done-counter instead of an O(n) scan of
//!   every program at every round.
//!
//! ## Sparse frontier execution
//!
//! For programs that opt in via [`NodeAlgorithm::MESSAGE_DRIVEN`] ("`round`
//! with an empty inbox is a no-op"), the round loop switches Ligra-style
//! between the dense scan above and a **sparse frontier gather** (see
//! [`crate::frontier`]): each successful store into the plane marks the
//! destination node — known at put time from the CSR `IncidentEdge`
//! target — in a `next_frontier` bitset, and when the frontier is small
//! (`|frontier| · θ < n`, θ = 8) the next round iterates only its set bits.
//! Nodes off the frontier received nothing, so their slots need no drain
//! and (by the opt-in contract) their step would be a no-op; nodes *on* the
//! frontier run the exact same gather → step body as the dense scan,
//! including the done-node drain.  Programs whose instances report
//! [`NodeAlgorithm::message_driven`]` == false` are eager: they ride the
//! frontier every round.  The schedule is pinned bit-identical to the dense
//! scan by `tests/frontier_equivalence.rs`; for programs that do not opt
//! in, the plumbing compiles away entirely and the loop below is unchanged.
//!
//! The observable semantics (outputs, [`RunStats`], trace, error cases) are
//! identical to the original push-based executor, which is preserved in
//! [`crate::reference`] as a differential-testing oracle; the equivalence is
//! asserted by the `runtime_equivalence` integration suite.

use crate::algorithm::{LocalView, MsgSink, NodeAlgorithm, SendSlot};
use crate::frontier::{FrontierMode, NodeSet};
use crate::message::BitSized;
use crate::model::Model;
use crate::plane::{ArenaPlane, Backing, HybridPlane, MessagePlane, PlaneStore};
use crate::pool;
use crate::stats::RunStats;
use crate::trace::TraceEvent;
use lma_graph::{IncidentEdge, Partition, Port, WeightedGraph};
use std::num::NonZeroUsize;

/// Configuration of one simulated run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Communication model (LOCAL or CONGEST(B)).
    pub model: Model,
    /// Hard cap on the number of rounds; exceeding it is an error (it almost
    /// always means the algorithm under test failed to terminate).
    pub max_rounds: usize,
    /// When true, the first message exceeding the CONGEST budget aborts the
    /// run with [`RunError::CongestViolation`]; when false, violations are
    /// only counted in [`RunStats::congest_violations`].
    pub enforce_congest: bool,
    /// When true, every message delivery is recorded in the result's trace.
    pub trace: bool,
    /// Executor parallelism: `None` or `Some(1)` runs the sequential plane
    /// executor; `Some(t)` with `t >= 2` runs the deterministic sharded
    /// executor on `t` scoped threads (see [`crate::executor`]).  Outputs,
    /// stats and traces are bit-identical either way; only wall-clock
    /// changes, so the knob is safe to flip per deployment.
    pub threads: Option<NonZeroUsize>,
    /// Slot-storage backend of the message plane (see [`Backing`]): inline
    /// `Option<M>` slots (the default; best for small flat messages) or the
    /// byte arena (best for `Vec`-carrying variable-size payloads).
    /// Bit-identical results either way; only the allocation profile
    /// changes.
    pub backing: Backing,
    /// Sparse-frontier scheduling for programs that opt in via
    /// [`NodeAlgorithm::MESSAGE_DRIVEN`] (see [`crate::frontier`]): the
    /// default [`FrontierMode::Auto`] switches per round between the dense
    /// scan and the sparse frontier gather; `Dense` / `Sparse` pin one
    /// path.  Bit-identical results in every mode; ignored by programs
    /// that do not opt in.
    pub frontier: FrontierMode,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            model: Model::Local,
            max_rounds: 100_000,
            enforce_congest: false,
            trace: false,
            threads: None,
            backing: Backing::Inline,
            frontier: FrontierMode::Auto,
        }
    }
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The algorithm did not terminate within `max_rounds` rounds.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A message exceeded the CONGEST budget while enforcement was on.
    CongestViolation {
        /// Round of the offending message.
        round: usize,
        /// Its size in bits.
        bits: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A node emitted more than one message on the same port in one round, or
    /// used a port out of range — a bug in the node program.
    MalformedOutbox {
        /// The offending node.
        node: usize,
        /// The offending port.
        port: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RoundLimitExceeded { limit } => {
                write!(f, "algorithm did not terminate within {limit} rounds")
            }
            Self::CongestViolation {
                round,
                bits,
                budget,
            } => write!(
                f,
                "message of {bits} bits in round {round} exceeds CONGEST budget of {budget} bits"
            ),
            Self::MalformedOutbox { node, port } => {
                write!(f, "node {node} produced a malformed outbox at port {port}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// The outcome of a successful run.
#[derive(Debug, Clone)]
pub struct RunResult<O> {
    /// Per-node outputs (indexed by node index); `None` for nodes that never
    /// produced an output (which the callers treat as a failure of the
    /// algorithm under test).
    pub outputs: Vec<Option<O>>,
    /// Aggregate communication statistics.
    pub stats: RunStats,
    /// Message-delivery trace, when requested in the config.
    pub trace: Option<Vec<TraceEvent>>,
}

/// The first fatal event observed while scattering a round's outboxes.
///
/// Errors surface one half-step later than they are detected: messages are
/// validated as the senders produce them, but — matching the original
/// executor, which validated at delivery time — the error is returned when
/// the offending messages would have been *delivered*.  In particular,
/// messages produced in the very step in which every node finished are
/// never delivered, never counted, and never raise errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PendingError {
    Malformed { node: usize, port: usize },
    Congest { bits: usize },
}

/// Per-round accounting accumulated at scatter time and committed when the
/// round the messages are delivered in actually begins.
#[derive(Debug, Default)]
pub(crate) struct PendingRound {
    pub(crate) messages: u64,
    pub(crate) bits: u64,
    pub(crate) max_bits: usize,
    pub(crate) violations: u64,
    pub(crate) error: Option<PendingError>,
    /// Trace events for the upcoming delivery round (reused buffer).
    pub(crate) events: Vec<TraceEvent>,
}

impl PendingRound {
    pub(crate) fn reset(&mut self) {
        self.messages = 0;
        self.bits = 0;
        self.max_bits = 0;
        self.violations = 0;
        self.error = None;
        self.events.clear();
    }
}

/// The live scatter path behind every [`MsgSink`] the plane executors hand
/// to node programs: validates each sent message, stores it into the plane
/// backend, and accumulates the accounting for the round the messages will
/// be delivered in (`delivery_round`).  Shared by the sequential and sharded
/// executors; constructed fresh per node per round (it is only borrows).
///
/// `plane` may cover only a suffix-aligned window of the global slot space
/// (a shard's contiguous slot range): `plane_offset` is the global index of
/// the plane's slot 0, so the sequential executor passes 0 and a sharded
/// worker passes its shard's first slot.
///
/// Error semantics match the historical outbox validation exactly: the
/// first fatal event wins (in send order within a node, in node order
/// across nodes), later sends are ignored, and the error surfaces when the
/// offending message would have been *delivered* (see [`PendingError`]).
pub(crate) struct Scatter<'a, M, S: PlaneStore<M>> {
    pub node: usize,
    /// First slot of `node` in the global slot space (`offsets[node]`).
    pub base: usize,
    pub degree: usize,
    pub delivery_round: usize,
    pub plane: &'a mut S,
    pub plane_offset: usize,
    pub spare: &'a mut Vec<M>,
    pub pending: &'a mut PendingRound,
    pub incident: &'a [IncidentEdge],
    pub budget: Option<usize>,
    pub enforce_congest: bool,
    pub trace: bool,
    /// Frontier marking target: `Some` only for programs that opted into
    /// sparse frontier execution ([`NodeAlgorithm::MESSAGE_DRIVEN`]), in
    /// which case every successfully stored message marks its destination
    /// node (the `IncidentEdge` target of the slot) as active in the round
    /// the message will be delivered in.
    pub frontier: Option<&'a mut NodeSet>,
}

impl<M: BitSized, S: PlaneStore<M>> Scatter<'_, M, S> {
    /// Pre-store validation; returns the message's global slot when the
    /// send should proceed.
    fn accept(&mut self, port: Port) -> Option<usize> {
        if self.pending.error.is_some() {
            return None;
        }
        if port >= self.degree {
            self.pending.error = Some(PendingError::Malformed {
                node: self.node,
                port,
            });
            return None;
        }
        Some(self.base + port)
    }

    /// Maps a store rejection back to the duplicated port (never a silent
    /// drop).
    fn reject(&mut self, occupied: crate::plane::SlotOccupied) {
        self.pending.error = Some(PendingError::Malformed {
            node: self.node,
            port: occupied.slot + self.plane_offset - self.base,
        });
    }

    /// Post-store accounting: frontier mark, stats, CONGEST audit, trace.
    fn account(&mut self, slot: usize, size: usize) {
        if let Some(front) = self.frontier.as_deref_mut() {
            front.insert(self.incident[slot].neighbor);
        }
        self.pending.messages += 1;
        self.pending.bits += size as u64;
        self.pending.max_bits = self.pending.max_bits.max(size);
        if let Some(b) = self.budget {
            if size > b {
                if self.enforce_congest {
                    self.pending.error = Some(PendingError::Congest { bits: size });
                    return;
                }
                self.pending.violations += 1;
            }
        }
        if self.trace {
            self.pending.events.push(TraceEvent {
                round: self.delivery_round,
                from: self.node,
                to: self.incident[slot].neighbor,
                bits: size,
            });
        }
    }
}

impl<M: BitSized, S: PlaneStore<M>> SendSlot<M> for Scatter<'_, M, S> {
    fn send(&mut self, port: Port, msg: M) {
        let Some(slot) = self.accept(port) else {
            return;
        };
        let size = msg.bit_size();
        match self.plane.store(slot - self.plane_offset, msg, self.spare) {
            Ok(()) => self.account(slot, size),
            Err(occupied) => self.reject(occupied),
        }
    }

    fn send_ref(&mut self, port: Port, msg: &M) {
        let Some(slot) = self.accept(port) else {
            return;
        };
        let size = msg.bit_size();
        match self.plane.store_ref(slot - self.plane_offset, msg) {
            Ok(()) => self.account(slot, size),
            Err(occupied) => self.reject(occupied),
        }
    }
}

/// The synchronous round executor for one graph.
#[derive(Debug, Clone)]
pub struct Runtime<'g> {
    graph: &'g WeightedGraph,
    config: RunConfig,
}

impl<'g> Runtime<'g> {
    /// A runtime with the default configuration (LOCAL model).
    #[must_use]
    pub fn new(graph: &'g WeightedGraph) -> Self {
        Self {
            graph,
            config: RunConfig::default(),
        }
    }

    /// A runtime with an explicit configuration.
    #[must_use]
    pub fn with_config(graph: &'g WeightedGraph, config: RunConfig) -> Self {
        Self { graph, config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The graph the runtime executes on.
    #[must_use]
    pub fn graph(&self) -> &WeightedGraph {
        self.graph
    }

    /// Builds the [`LocalView`] each node program is allowed to see.
    #[must_use]
    pub fn local_views(&self) -> Vec<LocalView> {
        let g = self.graph;
        g.nodes()
            .map(|u| LocalView {
                node: u,
                id: g.id(u),
                n: g.node_count(),
                incident: g
                    .incident(u)
                    .iter()
                    .map(|ie| (ie.port, ie.weight))
                    .collect(),
            })
            .collect()
    }

    /// Runs one node program per node until every node is done.
    ///
    /// `programs[u]` is the program for node `u`; the caller typically builds
    /// these from per-node advice strings.
    ///
    /// Dispatches on [`RunConfig::threads`]: the default (`None` / `Some(1)`)
    /// executes the sequential plane loop; `Some(t >= 2)` executes the
    /// deterministic sharded executor (see [`crate::sharded`]) on `t` scoped
    /// threads.  Both paths produce bit-identical outputs, stats and traces.
    pub fn run<A: NodeAlgorithm>(
        &self,
        programs: Vec<A>,
    ) -> Result<RunResult<A::Output>, RunError> {
        if let Some(threads) = self.config.threads {
            if threads.get() > 1 && self.graph.node_count() > 1 {
                let views = self.local_views();
                let partition = Partition::new(self.graph.csr(), threads.get());
                return crate::sharded::run_sharded(
                    self.graph,
                    self.config,
                    &partition,
                    &views,
                    programs,
                );
            }
        }
        self.run_sequential(programs)
    }

    /// The sequential plane executor (the deterministic reference the
    /// sharded executor is pinned against), dispatched on
    /// [`RunConfig::backing`].
    pub(crate) fn run_sequential<A: NodeAlgorithm>(
        &self,
        programs: Vec<A>,
    ) -> Result<RunResult<A::Output>, RunError> {
        match self.config.backing {
            Backing::Inline => self.run_sequential_on::<MessagePlane<A::Msg>, A>(programs),
            Backing::Arena => self.run_sequential_on::<ArenaPlane<A::Msg>, A>(programs),
            Backing::Hybrid => self.run_sequential_on::<HybridPlane<A::Msg>, A>(programs),
        }
    }

    fn run_sequential_on<S: PlaneStore<A::Msg>, A: NodeAlgorithm>(
        &self,
        programs: Vec<A>,
    ) -> Result<RunResult<A::Output>, RunError> {
        // All steady-state storage comes from the per-thread pool: allocated
        // at most once, then reused by every later run on this thread.
        let mut set = pool::checkout::<A::Msg, S>(self.graph.csr().slot_count());
        let result = self.sequential_loop(&mut set, programs);
        pool::give_back(set);
        result
    }

    fn sequential_loop<S: PlaneStore<A::Msg>, A: NodeAlgorithm>(
        &self,
        set: &mut pool::PlaneSet<A::Msg, S>,
        mut programs: Vec<A>,
    ) -> Result<RunResult<A::Output>, RunError> {
        let n = self.graph.node_count();
        assert_eq!(programs.len(), n, "one program per node is required");
        let views = self.local_views();
        let budget = self.config.model.budget();
        let csr = self.graph.csr();
        let offsets = csr.offsets();
        let mirror = csr.mirror_table();
        let incident = csr.incident_flat();

        let pool::PlaneSet {
            cur,
            next,
            inbox,
            spare,
        } = set;
        let mut pending = PendingRound::default();
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut stats = RunStats::default();
        let mut done_count = 0usize;

        // Frontier state for opted-in programs: `cur_front` holds the nodes
        // active in the round being gathered, `next_front` collects scatter
        // marks for the round after, `eager_front` is the constant set of
        // nodes whose instances are not message-driven.  For programs that
        // do not opt in these stay empty and every frontier branch below is
        // compiled out (`MESSAGE_DRIVEN` is an associated const).
        let mut cur_front = NodeSet::default();
        let mut next_front = NodeSet::default();
        let mut eager_front = NodeSet::default();
        if A::MESSAGE_DRIVEN {
            eager_front = NodeSet::new(n);
            for (u, program) in programs.iter().enumerate() {
                if !program.message_driven() {
                    eager_front.insert(u);
                }
            }
            cur_front = eager_front.clone();
            next_front = NodeSet::new(n);
        }

        // Initialization: round-0 local computation producing round-1
        // traffic, emitted straight into the plane (marking the round-1
        // frontier as it goes).
        for u in 0..n {
            let mut scatter = Scatter {
                node: u,
                base: offsets[u],
                degree: offsets[u + 1] - offsets[u],
                delivery_round: 1,
                plane: &mut *cur,
                plane_offset: 0,
                spare: &mut *spare,
                pending: &mut pending,
                incident,
                budget,
                enforce_congest: self.config.enforce_congest,
                trace: self.config.trace,
                frontier: A::MESSAGE_DRIVEN.then_some(&mut cur_front),
            };
            programs[u].init_into(&views[u], &mut MsgSink::new(&mut scatter));
            if programs[u].is_done() {
                done_count += 1;
            }
        }

        let mut round = 0usize;
        while done_count < n {
            if round >= self.config.max_rounds {
                return Err(RunError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                });
            }
            round += 1;

            // Commit the traffic scattered for this round: errors first (in
            // scatter order), then the statistics and the trace.
            match pending.error {
                Some(PendingError::Malformed { node, port }) => {
                    return Err(RunError::MalformedOutbox { node, port });
                }
                Some(PendingError::Congest { bits }) => {
                    return Err(RunError::CongestViolation {
                        round,
                        bits,
                        budget: budget.expect("congest error implies a budget"),
                    });
                }
                None => {}
            }
            stats.record_round(
                pending.messages,
                pending.bits,
                pending.max_bits,
                pending.violations,
            );
            // Frontier bookkeeping (opted-in programs only): record the
            // round's active-node count, decide dense vs sparse, and seed
            // the next frontier with the always-active eager nodes.
            let use_sparse = if A::MESSAGE_DRIVEN {
                let active = cur_front.count();
                let use_sparse = self.config.frontier.use_sparse(active, n);
                stats.record_frontier(active as u64, use_sparse);
                next_front.copy_from(&eager_front);
                use_sparse
            } else {
                false
            };
            if self.config.trace {
                events.append(&mut pending.events);
            }
            pending.reset();

            // Deliver and step.  Each receiver gathers its traffic by
            // pulling from the mirror slot of each of its ports: delivery
            // order is port-ascending by construction (no sort needed), and
            // each message is *moved* (inline) or decoded into a recycled
            // value (arena) out of the sender's slot.  Gathering is
            // unconditional — done nodes still drain their slots so the
            // plane is empty when the buffers swap.  (In sparse mode only
            // frontier nodes are visited; by construction nobody stored
            // into the slots of a skipped node, so the drain invariant
            // holds.)
            macro_rules! gather_step {
                ($v:expr) => {{
                    let v: usize = $v;
                    if S::RECYCLES {
                        spare.extend(inbox.drain(..).map(|(_, m)| m));
                    } else {
                        inbox.clear();
                    }
                    let base = offsets[v];
                    for (p, &sender_slot) in mirror[base..offsets[v + 1]].iter().enumerate() {
                        if let Some(msg) = cur.fetch(sender_slot, spare) {
                            inbox.push((p, msg));
                        }
                    }
                    if !programs[v].is_done() {
                        let mut scatter = Scatter {
                            node: v,
                            base,
                            degree: offsets[v + 1] - base,
                            delivery_round: round + 1,
                            plane: &mut *next,
                            plane_offset: 0,
                            spare: &mut *spare,
                            pending: &mut pending,
                            incident,
                            budget,
                            enforce_congest: self.config.enforce_congest,
                            trace: self.config.trace,
                            frontier: A::MESSAGE_DRIVEN.then_some(&mut next_front),
                        };
                        programs[v].round_into(
                            &views[v],
                            round,
                            inbox,
                            &mut MsgSink::new(&mut scatter),
                        );
                        if programs[v].is_done() {
                            done_count += 1;
                        }
                    }
                }};
            }
            if use_sparse {
                for v in cur_front.ones() {
                    gather_step!(v);
                }
            } else {
                for v in 0..n {
                    gather_step!(v);
                }
            }

            // The current plane was fully drained by the gather pass; it
            // becomes the (empty) scatter target of the next round.  The
            // frontiers swap in lockstep with the planes.
            std::mem::swap(cur, next);
            next.reset_round();
            if A::MESSAGE_DRIVEN {
                std::mem::swap(&mut cur_front, &mut next_front);
            }
        }

        let outputs = programs.iter().map(NodeAlgorithm::output).collect();
        Ok(RunResult {
            outputs,
            stats,
            trace: self.config.trace.then(|| {
                events.sort_by_key(|e| (e.round, e.from, e.to));
                events
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Outbox;
    use lma_graph::generators::{path, ring};
    use lma_graph::weights::WeightStrategy;
    use lma_graph::Port;

    /// Flood the maximum identifier: a classic LOCAL algorithm that needs
    /// exactly `diameter` rounds on a path when every node starts flooding.
    pub(crate) struct MaxIdFlood {
        best: u64,
        quiet_for: usize,
        done: bool,
    }

    impl MaxIdFlood {
        pub(crate) fn new() -> Self {
            Self {
                best: 0,
                quiet_for: 0,
                done: false,
            }
        }
    }

    impl NodeAlgorithm for MaxIdFlood {
        type Msg = u64;
        type Output = u64;

        fn init(&mut self, view: &LocalView) -> Outbox<u64> {
            self.best = view.id;
            (0..view.degree()).map(|p| (p, self.best)).collect()
        }

        fn round(&mut self, view: &LocalView, _round: usize, inbox: &[(Port, u64)]) -> Outbox<u64> {
            let before = self.best;
            for (_, id) in inbox {
                self.best = self.best.max(*id);
            }
            if self.best == before {
                self.quiet_for += 1;
            } else {
                self.quiet_for = 0;
            }
            // After n quiet rounds no new information can arrive.
            if self.quiet_for >= view.n {
                self.done = true;
                return Vec::new();
            }
            (0..view.degree()).map(|p| (p, self.best)).collect()
        }

        fn is_done(&self) -> bool {
            self.done
        }

        fn output(&self) -> Option<u64> {
            self.done.then_some(self.best)
        }
    }

    /// A 0-round program: outputs its own degree in `init`.
    struct ZeroRound {
        out: Option<usize>,
    }

    impl NodeAlgorithm for ZeroRound {
        type Msg = ();
        type Output = usize;

        fn init(&mut self, view: &LocalView) -> Outbox<()> {
            self.out = Some(view.degree());
            Vec::new()
        }

        fn round(&mut self, _: &LocalView, _: usize, _: &[(Port, ())]) -> Outbox<()> {
            Vec::new()
        }

        fn is_done(&self) -> bool {
            self.out.is_some()
        }

        fn output(&self) -> Option<usize> {
            self.out
        }
    }

    #[test]
    fn zero_round_algorithm_uses_zero_rounds() {
        let g = path(5, WeightStrategy::Unit);
        let rt = Runtime::new(&g);
        let programs = (0..5).map(|_| ZeroRound { out: None }).collect();
        let result = rt.run(programs).unwrap();
        assert_eq!(result.stats.rounds, 0);
        assert_eq!(result.stats.total_messages, 0);
        assert_eq!(result.outputs[0], Some(1));
        assert_eq!(result.outputs[2], Some(2));
    }

    #[test]
    fn flooding_converges_to_global_max() {
        let g = ring(9, WeightStrategy::Unit);
        let rt = Runtime::new(&g);
        let programs = (0..9).map(|_| MaxIdFlood::new()).collect();
        let result = rt.run(programs).unwrap();
        for out in &result.outputs {
            assert_eq!(*out, Some(8));
        }
        assert!(result.stats.rounds >= g.diameter());
        assert!(result.stats.total_messages > 0);
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = path(4, WeightStrategy::Unit);
        let config = RunConfig {
            max_rounds: 2,
            ..RunConfig::default()
        };
        let rt = Runtime::with_config(&g, config);
        let programs = (0..4).map(|_| MaxIdFlood::new()).collect::<Vec<_>>();
        let err = rt.run(programs).unwrap_err();
        assert_eq!(err, RunError::RoundLimitExceeded { limit: 2 });
    }

    #[test]
    fn congest_violations_are_counted_but_not_fatal_by_default() {
        let g = path(3, WeightStrategy::Unit);
        let config = RunConfig {
            model: Model::Congest { bits: 1 },
            ..RunConfig::default()
        };
        let rt = Runtime::with_config(&g, config);
        let programs = (0..3).map(|_| MaxIdFlood::new()).collect::<Vec<_>>();
        let result = rt.run(programs).unwrap();
        assert!(result.stats.congest_violations > 0);
    }

    #[test]
    fn congest_enforcement_aborts() {
        let g = path(3, WeightStrategy::Unit);
        let config = RunConfig {
            model: Model::Congest { bits: 1 },
            enforce_congest: true,
            ..RunConfig::default()
        };
        let rt = Runtime::with_config(&g, config);
        let programs = (0..3).map(|_| MaxIdFlood::new()).collect::<Vec<_>>();
        let err = rt.run(programs).unwrap_err();
        assert!(matches!(err, RunError::CongestViolation { .. }));
    }

    #[test]
    fn trace_records_deliveries() {
        let g = path(3, WeightStrategy::Unit);
        let config = RunConfig {
            trace: true,
            ..RunConfig::default()
        };
        let rt = Runtime::with_config(&g, config);
        let programs = (0..3).map(|_| MaxIdFlood::new()).collect::<Vec<_>>();
        let result = rt.run(programs).unwrap();
        let trace = result.trace.unwrap();
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[0].round <= w[1].round));
    }

    /// A program that sends two messages through the same port — must be
    /// rejected as malformed.
    struct Misbehaving {
        done: bool,
    }

    impl NodeAlgorithm for Misbehaving {
        type Msg = bool;
        type Output = ();

        fn init(&mut self, _view: &LocalView) -> Outbox<bool> {
            vec![(0, true), (0, false)]
        }

        fn round(&mut self, _: &LocalView, _: usize, _: &[(Port, bool)]) -> Outbox<bool> {
            self.done = true;
            Vec::new()
        }

        fn is_done(&self) -> bool {
            self.done
        }

        fn output(&self) -> Option<()> {
            self.done.then_some(())
        }
    }

    #[test]
    fn duplicate_port_use_is_malformed() {
        let g = path(2, WeightStrategy::Unit);
        let rt = Runtime::new(&g);
        let programs = vec![Misbehaving { done: false }, Misbehaving { done: false }];
        let err = rt.run(programs).unwrap_err();
        assert!(matches!(err, RunError::MalformedOutbox { .. }));
    }

    #[test]
    fn local_views_expose_only_local_information() {
        let g = ring(5, WeightStrategy::ByEdgeId);
        let rt = Runtime::new(&g);
        let views = rt.local_views();
        assert_eq!(views.len(), 5);
        for (u, view) in views.iter().enumerate() {
            assert_eq!(view.node, u);
            assert_eq!(view.n, 5);
            assert_eq!(view.degree(), 2);
            for (p, w) in &view.incident {
                assert_eq!(g.incident(u)[*p].weight, *w);
            }
        }
    }

    /// Messages produced in the step in which every node finishes are
    /// dropped, not counted — the contract inherited from the original
    /// executor (its round loop exited before routing them).
    struct FinalShout {
        sent: bool,
    }

    impl NodeAlgorithm for FinalShout {
        type Msg = u64;
        type Output = ();

        fn init(&mut self, view: &LocalView) -> Outbox<u64> {
            self.sent = true;
            (0..view.degree()).map(|p| (p, 9)).collect()
        }

        fn round(&mut self, view: &LocalView, _: usize, _: &[(Port, u64)]) -> Outbox<u64> {
            // Done as of this round, but still shouting: these messages must
            // never be delivered or counted.
            (0..view.degree()).map(|p| (p, 9)).collect()
        }

        fn is_done(&self) -> bool {
            self.sent
        }

        fn output(&self) -> Option<()> {
            Some(())
        }
    }

    #[test]
    fn final_step_messages_are_dropped() {
        let g = path(3, WeightStrategy::Unit);
        let rt = Runtime::new(&g);
        // All nodes are done right after init, so the init traffic is
        // dropped and the run reports zero rounds and zero messages.
        let programs = (0..3)
            .map(|_| FinalShout { sent: false })
            .collect::<Vec<_>>();
        let result = rt.run(programs).unwrap();
        assert_eq!(result.stats.rounds, 0);
        assert_eq!(result.stats.total_messages, 0);
    }
}
