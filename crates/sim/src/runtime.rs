//! The synchronous round executor.

use crate::algorithm::{Inbox, LocalView, NodeAlgorithm, Outbox};
use crate::message::BitSized;
use crate::model::Model;
use crate::stats::RunStats;
use crate::trace::{TraceEvent, TraceSink};
use lma_graph::WeightedGraph;
use rayon::prelude::*;

/// Configuration of one simulated run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Communication model (LOCAL or CONGEST(B)).
    pub model: Model,
    /// Hard cap on the number of rounds; exceeding it is an error (it almost
    /// always means the algorithm under test failed to terminate).
    pub max_rounds: usize,
    /// When true, the first message exceeding the CONGEST budget aborts the
    /// run with [`RunError::CongestViolation`]; when false, violations are
    /// only counted in [`RunStats::congest_violations`].
    pub enforce_congest: bool,
    /// When true, every message delivery is recorded in the result's trace.
    pub trace: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            model: Model::Local,
            max_rounds: 100_000,
            enforce_congest: false,
            trace: false,
        }
    }
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The algorithm did not terminate within `max_rounds` rounds.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A message exceeded the CONGEST budget while enforcement was on.
    CongestViolation {
        /// Round of the offending message.
        round: usize,
        /// Its size in bits.
        bits: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A node emitted more than one message on the same port in one round, or
    /// used a port out of range — a bug in the node program.
    MalformedOutbox {
        /// The offending node.
        node: usize,
        /// The offending port.
        port: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RoundLimitExceeded { limit } => {
                write!(f, "algorithm did not terminate within {limit} rounds")
            }
            Self::CongestViolation { round, bits, budget } => write!(
                f,
                "message of {bits} bits in round {round} exceeds CONGEST budget of {budget} bits"
            ),
            Self::MalformedOutbox { node, port } => {
                write!(f, "node {node} produced a malformed outbox at port {port}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// The outcome of a successful run.
#[derive(Debug, Clone)]
pub struct RunResult<O> {
    /// Per-node outputs (indexed by node index); `None` for nodes that never
    /// produced an output (which the callers treat as a failure of the
    /// algorithm under test).
    pub outputs: Vec<Option<O>>,
    /// Aggregate communication statistics.
    pub stats: RunStats,
    /// Message-delivery trace, when requested in the config.
    pub trace: Option<Vec<TraceEvent>>,
}

/// The synchronous round executor for one graph.
#[derive(Debug, Clone)]
pub struct Runtime<'g> {
    graph: &'g WeightedGraph,
    config: RunConfig,
}

impl<'g> Runtime<'g> {
    /// A runtime with the default configuration (LOCAL model).
    #[must_use]
    pub fn new(graph: &'g WeightedGraph) -> Self {
        Self {
            graph,
            config: RunConfig::default(),
        }
    }

    /// A runtime with an explicit configuration.
    #[must_use]
    pub fn with_config(graph: &'g WeightedGraph, config: RunConfig) -> Self {
        Self { graph, config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Builds the [`LocalView`] each node program is allowed to see.
    #[must_use]
    pub fn local_views(&self) -> Vec<LocalView> {
        let g = self.graph;
        g.nodes()
            .map(|u| LocalView {
                node: u,
                id: g.id(u),
                n: g.node_count(),
                incident: g.incident(u).iter().map(|ie| (ie.port, ie.weight)).collect(),
            })
            .collect()
    }

    /// Runs one node program per node until every node is done.
    ///
    /// `programs[u]` is the program for node `u`; the caller typically builds
    /// these from per-node advice strings.
    pub fn run<A: NodeAlgorithm>(
        &self,
        mut programs: Vec<A>,
    ) -> Result<RunResult<A::Output>, RunError> {
        assert_eq!(
            programs.len(),
            self.graph.node_count(),
            "one program per node is required"
        );
        let views = self.local_views();
        let budget = self.config.model.budget();
        let trace_sink = if self.config.trace { Some(TraceSink::new()) } else { None };

        // Initialization: round-0 local computation producing round-1 traffic.
        let mut outboxes: Vec<Outbox<A::Msg>> = programs
            .par_iter_mut()
            .zip(views.par_iter())
            .map(|(p, view)| p.init(view))
            .collect();

        let mut stats = RunStats::default();
        let mut round = 0usize;

        while !programs.iter().all(NodeAlgorithm::is_done) {
            if round >= self.config.max_rounds {
                return Err(RunError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                });
            }
            round += 1;

            // Validate outboxes and route messages into inboxes.
            let mut inboxes: Vec<Inbox<A::Msg>> = vec![Vec::new(); self.graph.node_count()];
            let mut messages = 0u64;
            let mut bits = 0u64;
            let mut max_bits = 0usize;
            let mut violations = 0u64;
            for (u, outbox) in outboxes.iter().enumerate() {
                let mut used_ports = std::collections::HashSet::new();
                for (port, msg) in outbox {
                    if *port >= self.graph.degree(u) || !used_ports.insert(*port) {
                        return Err(RunError::MalformedOutbox { node: u, port: *port });
                    }
                    let size = msg.bit_size();
                    messages += 1;
                    bits += size as u64;
                    max_bits = max_bits.max(size);
                    if let Some(b) = budget {
                        if size > b {
                            if self.config.enforce_congest {
                                return Err(RunError::CongestViolation {
                                    round,
                                    bits: size,
                                    budget: b,
                                });
                            }
                            violations += 1;
                        }
                    }
                    let edge = self.graph.edge(self.graph.edge_via(u, *port));
                    let v = edge.other(u);
                    let port_at_v = edge.port_at(v);
                    if let Some(sink) = &trace_sink {
                        sink.record(TraceEvent { round, from: u, to: v, bits: size });
                    }
                    inboxes[v].push((port_at_v, msg.clone()));
                }
            }
            stats.record_round(messages, bits, max_bits, violations);

            // Deterministic delivery order regardless of sender iteration.
            inboxes.par_iter_mut().for_each(|inbox| inbox.sort_by_key(|(p, _)| *p));

            // Step every node.
            outboxes = programs
                .par_iter_mut()
                .zip(views.par_iter())
                .zip(inboxes.par_iter())
                .map(|((p, view), inbox)| {
                    if p.is_done() {
                        Vec::new()
                    } else {
                        p.round(view, round, inbox)
                    }
                })
                .collect();
        }

        let outputs = programs.iter().map(NodeAlgorithm::output).collect();
        Ok(RunResult {
            outputs,
            stats,
            trace: trace_sink.map(TraceSink::into_events),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lma_graph::generators::{path, ring};
    use lma_graph::weights::WeightStrategy;

    /// Flood the maximum identifier: a classic LOCAL algorithm that needs
    /// exactly `diameter` rounds on a path when every node starts flooding.
    struct MaxIdFlood {
        best: u64,
        quiet_for: usize,
        done: bool,
    }

    impl MaxIdFlood {
        fn new() -> Self {
            Self { best: 0, quiet_for: 0, done: false }
        }
    }

    impl NodeAlgorithm for MaxIdFlood {
        type Msg = u64;
        type Output = u64;

        fn init(&mut self, view: &LocalView) -> Outbox<u64> {
            self.best = view.id;
            (0..view.degree()).map(|p| (p, self.best)).collect()
        }

        fn round(&mut self, view: &LocalView, _round: usize, inbox: &Inbox<u64>) -> Outbox<u64> {
            let before = self.best;
            for (_, id) in inbox {
                self.best = self.best.max(*id);
            }
            if self.best == before {
                self.quiet_for += 1;
            } else {
                self.quiet_for = 0;
            }
            // After n quiet rounds no new information can arrive.
            if self.quiet_for >= view.n {
                self.done = true;
                return Vec::new();
            }
            (0..view.degree()).map(|p| (p, self.best)).collect()
        }

        fn is_done(&self) -> bool {
            self.done
        }

        fn output(&self) -> Option<u64> {
            self.done.then_some(self.best)
        }
    }

    /// A 0-round program: outputs its own degree in `init`.
    struct ZeroRound {
        out: Option<usize>,
    }

    impl NodeAlgorithm for ZeroRound {
        type Msg = ();
        type Output = usize;

        fn init(&mut self, view: &LocalView) -> Outbox<()> {
            self.out = Some(view.degree());
            Vec::new()
        }

        fn round(&mut self, _: &LocalView, _: usize, _: &Inbox<()>) -> Outbox<()> {
            Vec::new()
        }

        fn is_done(&self) -> bool {
            self.out.is_some()
        }

        fn output(&self) -> Option<usize> {
            self.out
        }
    }

    #[test]
    fn zero_round_algorithm_uses_zero_rounds() {
        let g = path(5, WeightStrategy::Unit);
        let rt = Runtime::new(&g);
        let programs = (0..5).map(|_| ZeroRound { out: None }).collect();
        let result = rt.run(programs).unwrap();
        assert_eq!(result.stats.rounds, 0);
        assert_eq!(result.stats.total_messages, 0);
        assert_eq!(result.outputs[0], Some(1));
        assert_eq!(result.outputs[2], Some(2));
    }

    #[test]
    fn flooding_converges_to_global_max() {
        let g = ring(9, WeightStrategy::Unit);
        let rt = Runtime::new(&g);
        let programs = (0..9).map(|_| MaxIdFlood::new()).collect();
        let result = rt.run(programs).unwrap();
        for out in &result.outputs {
            assert_eq!(*out, Some(8));
        }
        assert!(result.stats.rounds >= g.diameter());
        assert!(result.stats.total_messages > 0);
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = path(4, WeightStrategy::Unit);
        let config = RunConfig { max_rounds: 2, ..RunConfig::default() };
        let rt = Runtime::with_config(&g, config);
        let programs = (0..4).map(|_| MaxIdFlood::new()).collect::<Vec<_>>();
        let err = rt.run(programs).unwrap_err();
        assert_eq!(err, RunError::RoundLimitExceeded { limit: 2 });
    }

    #[test]
    fn congest_violations_are_counted_but_not_fatal_by_default() {
        let g = path(3, WeightStrategy::Unit);
        let config = RunConfig {
            model: Model::Congest { bits: 1 },
            ..RunConfig::default()
        };
        let rt = Runtime::with_config(&g, config);
        let programs = (0..3).map(|_| MaxIdFlood::new()).collect::<Vec<_>>();
        let result = rt.run(programs).unwrap();
        assert!(result.stats.congest_violations > 0);
    }

    #[test]
    fn congest_enforcement_aborts() {
        let g = path(3, WeightStrategy::Unit);
        let config = RunConfig {
            model: Model::Congest { bits: 1 },
            enforce_congest: true,
            ..RunConfig::default()
        };
        let rt = Runtime::with_config(&g, config);
        let programs = (0..3).map(|_| MaxIdFlood::new()).collect::<Vec<_>>();
        let err = rt.run(programs).unwrap_err();
        assert!(matches!(err, RunError::CongestViolation { .. }));
    }

    #[test]
    fn trace_records_deliveries() {
        let g = path(3, WeightStrategy::Unit);
        let config = RunConfig { trace: true, ..RunConfig::default() };
        let rt = Runtime::with_config(&g, config);
        let programs = (0..3).map(|_| MaxIdFlood::new()).collect::<Vec<_>>();
        let result = rt.run(programs).unwrap();
        let trace = result.trace.unwrap();
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[0].round <= w[1].round));
    }

    /// A program that sends two messages through the same port — must be
    /// rejected as malformed.
    struct Misbehaving {
        done: bool,
    }

    impl NodeAlgorithm for Misbehaving {
        type Msg = bool;
        type Output = ();

        fn init(&mut self, _view: &LocalView) -> Outbox<bool> {
            vec![(0, true), (0, false)]
        }

        fn round(&mut self, _: &LocalView, _: usize, _: &Inbox<bool>) -> Outbox<bool> {
            self.done = true;
            Vec::new()
        }

        fn is_done(&self) -> bool {
            self.done
        }

        fn output(&self) -> Option<()> {
            self.done.then_some(())
        }
    }

    #[test]
    fn duplicate_port_use_is_malformed() {
        let g = path(2, WeightStrategy::Unit);
        let rt = Runtime::new(&g);
        let programs = vec![Misbehaving { done: false }, Misbehaving { done: false }];
        let err = rt.run(programs).unwrap_err();
        assert!(matches!(err, RunError::MalformedOutbox { .. }));
    }

    #[test]
    fn local_views_expose_only_local_information() {
        let g = ring(5, WeightStrategy::ByEdgeId);
        let rt = Runtime::new(&g);
        let views = rt.local_views();
        assert_eq!(views.len(), 5);
        for (u, view) in views.iter().enumerate() {
            assert_eq!(view.node, u);
            assert_eq!(view.n, 5);
            assert_eq!(view.degree(), 2);
            for (p, w) in &view.incident {
                assert_eq!(g.incident(u)[*p].weight, *w);
            }
        }
    }
}
