//! The unified run pipeline: the [`Sim`] builder and the [`Workload`] trait.
//!
//! Historically every caller wired a run by hand: construct a [`RunConfig`]
//! literal, pick [`Runtime::run`] or an explicit executor, remember which
//! knob selects the plane backing, and fold the outputs into whatever shape
//! the harness wanted.  This module replaces all of that with **one typed
//! entry point**:
//!
//! * [`Sim`] — a zero-cost builder pinning a graph plus every run knob
//!   (model, round limit, trace, thread count, plane backing, execution
//!   engine).  It resolves to a [`RunConfig`] internally; `RunConfig`
//!   literals and direct `Runtime`/executor calls are implementation
//!   details of this crate.
//!
//!   ```
//!   use lma_sim::{Backing, Model, Sim};
//!   use lma_graph::generators::ring;
//!   use lma_graph::weights::WeightStrategy;
//!
//!   let graph = ring(8, WeightStrategy::Unit);
//!   let sim = Sim::on(&graph)
//!       .model(Model::congest_for(8))
//!       .backing(Backing::Arena)
//!       .threads(2)
//!       .round_limit(1_000);
//!   # let _ = sim;
//!   ```
//!
//! * [`Workload`] — a full experiment pipeline as a value: a centralized
//!   [`prepare`](Workload::prepare) phase (the paper's *oracle*), a
//!   distributed [`execute`](Workload::execute) phase run on a `Sim`, an
//!   independent [`verify`](Workload::verify) check, and a
//!   [`fold`](Workload::fold) of the typed outcome into a
//!   [`DigestWriter`] for golden-digest regression guards.  The generic
//!   driver [`run_workload`] chains the phases; [`DynWorkload`] is the
//!   object-safe form registries store.
//!
//! * [`FleetWorkload`] — the common special case: one node program per
//!   node, one simulator run, outputs collated into the typed outcome.  A
//!   blanket impl turns any `FleetWorkload` into a [`Workload`], so simple
//!   workloads only write a program factory and a
//!   [`collate`](FleetWorkload::collate) step.
//!
//! The builder adds **zero per-run overhead**: `Sim` is a `Copy` value
//! holding a graph reference and the resolved `RunConfig`, and
//! [`Sim::run`] dispatches to exactly the same executor paths (and the same
//! per-thread plane pool) a hand-built `Runtime` uses.  The `driver` group
//! of `bench_substrate` pins this with a counting allocator.

use crate::algorithm::NodeAlgorithm;
use crate::batch::BatchSim;
use crate::digest::{fold_error, DigestWriter, RunSummary};
use crate::executor::{Executor, ReferenceExecutor, SequentialExecutor};
use crate::frontier::FrontierMode;
use crate::model::Model;
use crate::plane::Backing;
use crate::runtime::{RunConfig, RunError, RunResult, Runtime};
use lma_graph::{Partition, WeightedGraph};
use std::any::Any;
use std::num::NonZeroUsize;

/// The execution engine a [`Sim`] dispatches a run to.
///
/// All engines produce bit-identical outputs, stats, traces and errors for
/// the same `(graph, config, programs)` — pinned by the
/// `runtime_equivalence` suite — so the choice is purely about performance
/// (and, for [`Engine::Reference`], differential testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Dispatch on the configured thread count ([`Sim::threads`]): the
    /// sequential plane executor by default, the sharded executor when two
    /// or more threads are requested.  The right choice for all ordinary
    /// callers.
    Auto,
    /// Always the sequential plane executor, ignoring the thread knob.
    Sequential,
    /// The deterministic sharded executor on the given worker count.
    Sharded(NonZeroUsize),
    /// The preserved push-based oracle (plane-free, allocating) — for
    /// differential testing and benchmark baselines only.
    Reference,
}

impl Engine {
    /// Stable short label used in scenario cell ids and lock files
    /// (`"auto"`, `"seq"`, `"sharded<t>"`, `"push"`).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Engine::Auto => "auto".to_string(),
            Engine::Sequential => "seq".to_string(),
            Engine::Sharded(t) => format!("sharded{t}"),
            Engine::Reference => "push".to_string(),
        }
    }
}

/// A configured simulation: one graph plus every run knob, ready to execute
/// program fleets.  See the [module docs](self) for the builder idiom.
///
/// `Sim` is `Copy`: clone it freely to derive per-cell variants of a base
/// configuration (`sim.backing(..)`, `sim.executor(..)` consume and return
/// by value, so a shared `Sim` is never mutated in place).
#[derive(Debug, Clone, Copy)]
pub struct Sim<'g> {
    graph: &'g WeightedGraph,
    config: RunConfig,
    engine: Engine,
    /// Caller-supplied precomputed partition (see [`Sim::with_partition`]).
    partition: Option<&'g Partition>,
}

impl<'g> Sim<'g> {
    /// A simulation on `graph` with the default configuration: LOCAL model,
    /// generous round limit, no trace, sequential auto-dispatch, inline
    /// plane backing.
    #[must_use]
    pub fn on(graph: &'g WeightedGraph) -> Self {
        Self {
            graph,
            config: RunConfig::default(),
            engine: Engine::Auto,
            partition: None,
        }
    }

    /// Sets the communication model (LOCAL or CONGEST(B)).
    #[must_use]
    pub fn model(mut self, model: Model) -> Self {
        self.config.model = model;
        self
    }

    /// Sets the hard round limit; exceeding it fails the run with
    /// [`RunError::RoundLimitExceeded`].
    #[must_use]
    pub fn round_limit(mut self, max_rounds: usize) -> Self {
        self.config.max_rounds = max_rounds;
        self
    }

    /// When `true`, the first message over the CONGEST budget aborts the run
    /// (instead of only being counted in the stats).
    #[must_use]
    pub fn enforce_congest(mut self, enforce: bool) -> Self {
        self.config.enforce_congest = enforce;
        self
    }

    /// When `true`, every message delivery is recorded in the result's
    /// trace.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.config.trace = trace;
        self
    }

    /// Sets the worker-thread count for [`Engine::Auto`] dispatch: `0` and
    /// `1` run the sequential executor, `t >= 2` the sharded executor on
    /// `t` scoped threads.  Results are bit-identical either way.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = NonZeroUsize::new(threads).filter(|t| t.get() > 1);
        self
    }

    /// Selects the plane's slot-storage backend (see [`Backing`]).
    #[must_use]
    pub fn backing(mut self, backing: Backing) -> Self {
        self.config.backing = backing;
        self
    }

    /// Selects the sparse-frontier scheduling mode (see
    /// [`crate::frontier::FrontierMode`]) for programs that opt in via
    /// [`NodeAlgorithm::MESSAGE_DRIVEN`].  Bit-identical results in every
    /// mode; ignored by programs that do not opt in.
    #[must_use]
    pub fn frontier(mut self, mode: FrontierMode) -> Self {
        self.config.frontier = mode;
        self
    }

    /// Supplies a precomputed [`Partition`] of this graph — **the**
    /// cached-partition facility of the workspace: multi-run harnesses
    /// (`RunHarness` in `lma-bench`) and the `lma-serve` topology cache
    /// partition a graph once and hand the result to every subsequent `Sim`
    /// on it, instead of re-partitioning per run.
    ///
    /// The partition is consulted by every sharded dispatch reachable from
    /// this value — [`Sim::run`], nested pipeline runs through
    /// [`Workload::execute`], and the lockstep batch executor
    /// ([`Sim::batch`]) — whenever the run actually shards **and** the
    /// partition's shard count matches the resolved worker count; in every
    /// other case it is ignored and the run partitions on the fly, so a
    /// mismatched handoff can never change behavior, only cost.
    ///
    /// Correctness note: `partition` must have been built from **this**
    /// graph's CSR (`Partition::new(graph.csr(), t)`).  Boundary routing
    /// tables depend on the edges, so handing a partition of a different
    /// graph is a logic error — the same contract as
    /// [`ShardedExecutor::for_graph`](crate::executor::ShardedExecutor::for_graph),
    /// which enforces it by construction.
    #[must_use]
    pub fn with_partition(mut self, partition: &'g Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// The precomputed partition, when one was supplied.
    #[must_use]
    pub fn partition(&self) -> Option<&'g Partition> {
        self.partition
    }

    /// Pins an explicit execution engine.  The thread knob of the resolved
    /// config is *derived* from the pinned engine at [`Sim::config`] time
    /// (see there), so engine and config can never contradict each other,
    /// in any builder-call order.
    #[must_use]
    pub fn executor(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The graph this simulation runs on.
    #[must_use]
    pub fn graph(&self) -> &'g WeightedGraph {
        self.graph
    }

    /// The resolved low-level run configuration.  Exposed for code that
    /// hands the simulator to a nested pipeline; everything else should
    /// stay on the builder.
    ///
    /// The thread knob is resolved against the pinned [`Engine`] —
    /// [`Engine::Sharded`] reports its worker count,
    /// [`Engine::Sequential`] / [`Engine::Reference`] report none,
    /// [`Engine::Auto`] reports whatever [`Sim::threads`] set — so
    /// config-driven re-entry (e.g. a harness precomputing a sharded
    /// executor from this value) always dispatches onto the same engine as
    /// [`Sim::run`], regardless of builder-call order.
    #[must_use]
    pub fn config(&self) -> RunConfig {
        let mut config = self.config;
        config.threads = match self.engine {
            Engine::Auto => config.threads,
            Engine::Sharded(t) => Some(t),
            Engine::Sequential | Engine::Reference => None,
        };
        config
    }

    /// The pinned execution engine.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Runs one node program per node until every node is done, dispatching
    /// on the pinned [`Engine`].
    ///
    /// # Errors
    /// Exactly the error cases of [`Runtime::run`].
    pub fn run<A: NodeAlgorithm>(
        &self,
        programs: Vec<A>,
    ) -> Result<RunResult<A::Output>, RunError> {
        let config = self.config();
        match self.engine {
            Engine::Auto | Engine::Sharded(_) => match config.threads {
                Some(t) if t.get() > 1 && self.graph.node_count() > 1 => {
                    let runtime = Runtime::with_config(self.graph, config);
                    let views = runtime.local_views();
                    match self.usable_partition(t.get()) {
                        Some(partition) => crate::sharded::run_sharded(
                            self.graph, config, partition, &views, programs,
                        ),
                        None => {
                            let partition = Partition::new(self.graph.csr(), t.get());
                            crate::sharded::run_sharded(
                                self.graph, config, &partition, &views, programs,
                            )
                        }
                    }
                }
                _ => SequentialExecutor.run(self.graph, config, programs),
            },
            Engine::Sequential => SequentialExecutor.run(self.graph, config, programs),
            Engine::Reference => ReferenceExecutor.run(self.graph, config, programs),
        }
    }

    /// The supplied partition, when it matches the resolved worker count
    /// (any mismatch falls back to partitioning on the fly — see
    /// [`Sim::with_partition`]).
    pub(crate) fn usable_partition(&self, threads: usize) -> Option<&'g Partition> {
        self.partition.filter(|p| p.shard_count() == threads)
    }

    /// Runs on an explicit [`Executor`] value, bypassing the pinned engine —
    /// the hook for harnesses that precompute per-graph executor state
    /// (e.g. a partition-caching [`crate::ShardedExecutor`]).
    ///
    /// # Errors
    /// Exactly the error cases of [`Runtime::run`].
    pub fn run_on<E: Executor, A: NodeAlgorithm>(
        &self,
        executor: &E,
        programs: Vec<A>,
    ) -> Result<RunResult<A::Output>, RunError> {
        executor.run(self.graph, self.config(), programs)
    }
}

/// Why a [`Workload`] pipeline failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The simulator rejected the distributed phase.  Kept structured
    /// because *failing the same way* is part of a pinned scenario's
    /// contract: the error payload folds into golden digests.
    Run(RunError),
    /// The centralized prepare/oracle phase failed (e.g. a disconnected
    /// graph or an advice-packing overflow).
    Prepare(String),
    /// The outcome failed independent verification.
    Invalid(String),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Run(e) => write!(f, "simulation failure: {e}"),
            Self::Prepare(msg) => write!(f, "prepare failure: {msg}"),
            Self::Invalid(msg) => write!(f, "verification failure: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<RunError> for WorkloadError {
    fn from(e: RunError) -> Self {
        Self::Run(e)
    }
}

/// A full experiment pipeline as a value: oracle → distributed run →
/// independent verification → digest fold.
///
/// Implementations live next to the thing they run — the baselines crate
/// implements it for its MST baselines, the advice crate for advising
/// schemes (the oracle phase is [`prepare`](Workload::prepare)), the
/// labeling crate for the certified decode-plus-verify pipeline — and the
/// scenario registry of `lma-bench` stores them as [`DynWorkload`] trait
/// objects, deriving every golden digest from [`fold`](Workload::fold)
/// instead of per-scenario glue.
///
/// For single-run workloads prefer implementing [`FleetWorkload`]; a
/// blanket impl provides `Workload` on top.
pub trait Workload: Send + Sync {
    /// Product of the centralized prepare phase (advice strings, reference
    /// trees, labels — whatever the distributed phase consumes).
    ///
    /// `Clone` because prepare is deterministic per graph and its product is
    /// pure data: a cached oracle (see [`DynWorkload::prepare_oracle`]) is
    /// cloned per run/lane rather than recomputed.  `'static + Send + Sync`
    /// so erased oracles can live in cross-request caches.
    type Prep: Clone + Send + Sync + 'static;
    /// The typed outcome of the full pipeline.
    type Outcome: Send;

    /// A short, stable name (used by scenario ids and the `--workload`
    /// filter of the `scenarios` binary).
    fn name(&self) -> &'static str;

    /// Tailors a base [`Sim`] to this workload's needs (model, trace, round
    /// limit).  The caller still owns the engine/backing knobs.
    #[must_use]
    fn tune<'g>(&self, sim: Sim<'g>) -> Sim<'g> {
        sim
    }

    /// Whether the workload can run on the push-based [`Engine::Reference`]
    /// oracle.  Multi-stage pipelines that pre-date the unified driver were
    /// pinned without reference cells; they keep answering `false` so the
    /// committed scenario matrix stays stable.
    fn supports_reference(&self) -> bool {
        true
    }

    /// The centralized oracle/setup phase.
    ///
    /// # Errors
    /// [`WorkloadError::Prepare`] when the oracle cannot handle the graph.
    fn prepare(&self, graph: &WeightedGraph) -> Result<Self::Prep, WorkloadError>;

    /// The distributed phase: build per-node programs, run them on `sim`,
    /// and collate the results into the typed outcome.
    ///
    /// # Errors
    /// [`WorkloadError::Run`] when the simulator rejects the run.
    fn execute(&self, sim: &Sim<'_>, prep: Self::Prep) -> Result<Self::Outcome, WorkloadError>;

    /// Whether [`execute_batch`](Workload::execute_batch) actually shares a
    /// traversal across lanes.  The default impl runs lanes one by one, so
    /// it answers `false`; single-fleet workloads (the [`FleetWorkload`]
    /// blanket impl) ride the lockstep batch executor and answer `true`.
    fn supports_batch(&self) -> bool {
        false
    }

    /// The distributed phase for a whole batch: one prep per lane, one
    /// outcome (or error) per lane, index for index.  The default simply
    /// executes the lanes sequentially; workloads whose distributed phase
    /// is a fleet run override this to fan the preps into a
    /// [`BatchSim::run`] so graph traversal and plane management are
    /// amortized across the batch.
    fn execute_batch(
        &self,
        batch: &BatchSim<'_>,
        preps: Vec<Self::Prep>,
    ) -> Vec<Result<Self::Outcome, WorkloadError>> {
        preps
            .into_iter()
            .map(|prep| self.execute(batch.sim(), prep))
            .collect()
    }

    /// Independent (centralized) verification of the outcome.
    ///
    /// # Errors
    /// [`WorkloadError::Invalid`] when the outcome fails the check.
    fn verify(&self, graph: &WeightedGraph, outcome: &Self::Outcome) -> Result<(), WorkloadError> {
        let _ = (graph, outcome);
        Ok(())
    }

    /// Folds the outcome into a digest writer.  The encoding is a pinned
    /// wire format: golden digests in `SCENARIOS.lock` depend on it.
    fn fold(&self, w: &mut DigestWriter, outcome: &Self::Outcome);

    /// The drift-localization summary of the outcome (see [`RunSummary`]).
    fn summary(&self, outcome: &Self::Outcome) -> RunSummary;
}

/// Runs a [`Workload`] end to end on `sim`: prepare, execute, verify.
///
/// The caller is expected to have applied [`Workload::tune`] to the `Sim`
/// (registries do this once per cell, after picking engine and backing).
///
/// # Errors
/// The first failing phase's [`WorkloadError`].
pub fn run_workload<W: Workload + ?Sized>(
    workload: &W,
    sim: &Sim<'_>,
) -> Result<W::Outcome, WorkloadError> {
    let prep = workload.prepare(sim.graph())?;
    run_workload_prepared(workload, sim, prep)
}

/// The prepare-free tail of [`run_workload`]: execute and verify with a
/// caller-supplied prep.  Because prepare is deterministic per graph, running
/// with a cached prep produces exactly what [`run_workload`] would — this is
/// the primitive the oracle cache of `lma-serve` builds on.
///
/// # Errors
/// The first failing phase's [`WorkloadError`].
pub fn run_workload_prepared<W: Workload + ?Sized>(
    workload: &W,
    sim: &Sim<'_>,
    prep: W::Prep,
) -> Result<W::Outcome, WorkloadError> {
    let outcome = workload.execute(sim, prep)?;
    workload.verify(sim.graph(), &outcome)?;
    Ok(outcome)
}

/// Runs a [`Workload`] once per lane of `batch` — prepare `W` times,
/// execute the lanes through [`Workload::execute_batch`] (lockstep when the
/// workload supports it), verify each lane independently — returning one
/// result per lane, index for index.  Each lane's result is exactly what
/// [`run_workload`] would have produced on `batch.sim()` alone; the batch
/// changes the cost, never the outcome.
pub fn run_workload_batch<W: Workload + ?Sized>(
    workload: &W,
    batch: &BatchSim<'_>,
) -> Vec<Result<W::Outcome, WorkloadError>> {
    let graph = batch.sim().graph();
    let mut preps = Vec::with_capacity(batch.lanes());
    for _ in 0..batch.lanes() {
        match workload.prepare(graph) {
            Ok(prep) => preps.push(prep),
            // Prepare is deterministic per graph: a failure fails every
            // lane the same way, exactly as `W` solo pipelines would.
            Err(e) => return (0..batch.lanes()).map(|_| Err(e.clone())).collect(),
        }
    }
    run_workload_batch_prepared(workload, batch, preps)
}

/// The prepare-free tail of [`run_workload_batch`]: execute all lanes with
/// caller-supplied preps (one per lane, index for index) and verify each lane
/// independently.
///
/// # Panics
/// When `preps.len() != batch.lanes()`.
pub fn run_workload_batch_prepared<W: Workload + ?Sized>(
    workload: &W,
    batch: &BatchSim<'_>,
    preps: Vec<W::Prep>,
) -> Vec<Result<W::Outcome, WorkloadError>> {
    assert_eq!(preps.len(), batch.lanes(), "one prep per lane");
    let graph = batch.sim().graph();
    workload
        .execute_batch(batch, preps)
        .into_iter()
        .map(|lane| {
            lane.and_then(|outcome| {
                workload.verify(graph, &outcome)?;
                Ok(outcome)
            })
        })
        .collect()
}

/// A [`Workload`] whose distributed phase is a single fleet run: one
/// program per node, one [`Sim::run`], outputs collated into the typed
/// outcome.  The blanket impl below lifts any `FleetWorkload` into a
/// [`Workload`].
pub trait FleetWorkload: Send + Sync {
    /// Product of the centralized prepare phase.  See [`Workload::Prep`]
    /// for the bounds rationale.
    type Prep: Clone + Send + Sync + 'static;
    /// The per-node program type.
    type Program: NodeAlgorithm;
    /// The typed outcome of the pipeline.
    type Outcome: Send;

    /// See [`Workload::name`].
    fn name(&self) -> &'static str;

    /// See [`Workload::tune`].
    #[must_use]
    fn tune<'g>(&self, sim: Sim<'g>) -> Sim<'g> {
        sim
    }

    /// See [`Workload::prepare`].
    ///
    /// # Errors
    /// [`WorkloadError::Prepare`] when the oracle cannot handle the graph.
    fn prepare(&self, graph: &WeightedGraph) -> Result<Self::Prep, WorkloadError>;

    /// The per-node program factory: `programs(graph, prep)[u]` is the
    /// program node `u` runs.
    fn programs(&self, graph: &WeightedGraph, prep: &Self::Prep) -> Vec<Self::Program>;

    /// Collates the raw run result into the typed outcome.
    ///
    /// # Errors
    /// [`WorkloadError::Invalid`] when the outputs cannot be collated.
    fn collate(
        &self,
        graph: &WeightedGraph,
        prep: Self::Prep,
        result: RunResult<<Self::Program as NodeAlgorithm>::Output>,
    ) -> Result<Self::Outcome, WorkloadError>;

    /// See [`Workload::verify`].
    ///
    /// # Errors
    /// [`WorkloadError::Invalid`] when the outcome fails the check.
    fn verify(&self, graph: &WeightedGraph, outcome: &Self::Outcome) -> Result<(), WorkloadError> {
        let _ = (graph, outcome);
        Ok(())
    }

    /// See [`Workload::fold`].
    fn fold(&self, w: &mut DigestWriter, outcome: &Self::Outcome);

    /// See [`Workload::summary`].
    fn summary(&self, outcome: &Self::Outcome) -> RunSummary;
}

impl<F: FleetWorkload> Workload for F {
    type Prep = F::Prep;
    type Outcome = F::Outcome;

    fn name(&self) -> &'static str {
        FleetWorkload::name(self)
    }

    fn tune<'g>(&self, sim: Sim<'g>) -> Sim<'g> {
        FleetWorkload::tune(self, sim)
    }

    fn prepare(&self, graph: &WeightedGraph) -> Result<Self::Prep, WorkloadError> {
        FleetWorkload::prepare(self, graph)
    }

    fn execute(&self, sim: &Sim<'_>, prep: Self::Prep) -> Result<Self::Outcome, WorkloadError> {
        let programs = self.programs(sim.graph(), &prep);
        let result = sim.run(programs)?;
        self.collate(sim.graph(), prep, result)
    }

    fn supports_batch(&self) -> bool {
        true
    }

    fn execute_batch(
        &self,
        batch: &BatchSim<'_>,
        preps: Vec<Self::Prep>,
    ) -> Vec<Result<Self::Outcome, WorkloadError>> {
        let graph = batch.sim().graph();
        let fleets = preps.iter().map(|p| self.programs(graph, p)).collect();
        let lane_results = batch.run(fleets).expect("one fleet per lane was supplied");
        preps
            .into_iter()
            .zip(lane_results)
            .map(|(prep, lane)| match lane {
                Ok(result) => self.collate(graph, prep, result),
                Err(e) => Err(WorkloadError::Run(e)),
            })
            .collect()
    }

    fn verify(&self, graph: &WeightedGraph, outcome: &Self::Outcome) -> Result<(), WorkloadError> {
        FleetWorkload::verify(self, graph, outcome)
    }

    fn fold(&self, w: &mut DigestWriter, outcome: &Self::Outcome) {
        FleetWorkload::fold(self, w, outcome)
    }

    fn summary(&self, outcome: &Self::Outcome) -> RunSummary {
        FleetWorkload::summary(self, outcome)
    }
}

/// An erased product of a workload's centralized prepare phase, produced by
/// [`DynWorkload::prepare_oracle`] and consumed by
/// [`DynWorkload::run_fold_prepared`] /
/// [`DynWorkload::run_fold_batch_prepared`].
///
/// Prepare is deterministic per graph, so an oracle computed once can serve
/// every later run of the same workload on the same graph — the hot-state
/// cache of `lma-serve` stores these keyed by `(workload, topology)`.  The
/// concrete type inside the box is the workload's [`Workload::Prep`]; handing
/// an oracle to a *different* workload is reported as
/// [`WorkloadError::Prepare`], never a panic.
pub type PreparedOracle = Box<dyn Any + Send + Sync>;

/// The object-safe form of [`Workload`] that heterogeneous registries
/// store: run the full pipeline and fold the outcome — or, when the
/// simulator rejects the run, the error payload — into a digest writer.
pub trait DynWorkload: Send + Sync {
    /// See [`Workload::name`].
    fn name(&self) -> &'static str;

    /// See [`Workload::tune`].
    #[must_use]
    fn tune<'g>(&self, sim: Sim<'g>) -> Sim<'g>;

    /// See [`Workload::supports_reference`].
    fn supports_reference(&self) -> bool;

    /// Runs [`run_workload`] and folds the outcome into `w`.  A
    /// [`WorkloadError::Run`] is folded as the error payload (expected for
    /// error-path scenarios) and reported as an error-shaped summary; other
    /// errors propagate.
    ///
    /// # Errors
    /// [`WorkloadError::Prepare`] / [`WorkloadError::Invalid`] from the
    /// centralized phases.
    fn run_fold(&self, sim: &Sim<'_>, w: &mut DigestWriter) -> Result<RunSummary, WorkloadError>;

    /// See [`Workload::supports_batch`].
    fn supports_batch(&self) -> bool;

    /// Runs the workload once per lane of a `lanes`-wide batch on `sim` via
    /// [`run_workload_batch`], folding each lane into its own writer
    /// (`writers[l]` ↔ lane `l`) with the same outcome-or-run-error folding
    /// as [`run_fold`](DynWorkload::run_fold).  Returns one summary per
    /// lane.
    ///
    /// # Errors
    /// [`WorkloadError::Prepare`] / [`WorkloadError::Invalid`] from the
    /// centralized phases of any lane.
    fn run_fold_batch(
        &self,
        sim: &Sim<'_>,
        lanes: usize,
        writers: &mut [DigestWriter],
    ) -> Result<Vec<RunSummary>, WorkloadError>;

    /// Runs the centralized prepare phase once, returning its product in
    /// erased, cacheable form (see [`PreparedOracle`]).
    ///
    /// # Errors
    /// [`WorkloadError::Prepare`] when the oracle cannot handle the graph.
    fn prepare_oracle(&self, graph: &WeightedGraph) -> Result<PreparedOracle, WorkloadError>;

    /// [`run_fold`](DynWorkload::run_fold) with a cached oracle in place of
    /// a fresh prepare.  Because prepare is deterministic per graph, the
    /// digest and summary are exactly those of `run_fold` on the same `sim`.
    ///
    /// # Errors
    /// [`WorkloadError::Prepare`] when `oracle` was produced by a different
    /// workload type; [`WorkloadError::Invalid`] from verification.
    fn run_fold_prepared(
        &self,
        sim: &Sim<'_>,
        oracle: &PreparedOracle,
        w: &mut DigestWriter,
    ) -> Result<RunSummary, WorkloadError>;

    /// [`run_fold_batch`](DynWorkload::run_fold_batch) with a cached oracle:
    /// the single oracle is cloned into every lane (prepare is deterministic,
    /// so `W` fresh prepares would have produced `W` equal preps).
    ///
    /// # Errors
    /// [`WorkloadError::Prepare`] when `oracle` was produced by a different
    /// workload type; [`WorkloadError::Invalid`] from any lane's
    /// verification.
    fn run_fold_batch_prepared(
        &self,
        sim: &Sim<'_>,
        oracle: &PreparedOracle,
        lanes: usize,
        writers: &mut [DigestWriter],
    ) -> Result<Vec<RunSummary>, WorkloadError>;
}

/// Recovers a workload's typed prep from an erased oracle, failing with a
/// typed error (not a panic) on a cross-workload mixup.
fn downcast_prep<'a, W: Workload + ?Sized>(
    workload: &W,
    oracle: &'a PreparedOracle,
) -> Result<&'a W::Prep, WorkloadError> {
    oracle.downcast_ref::<W::Prep>().ok_or_else(|| {
        WorkloadError::Prepare(format!(
            "cached oracle type mismatch for workload `{}`",
            workload.name()
        ))
    })
}

impl<W: Workload> DynWorkload for W {
    fn name(&self) -> &'static str {
        Workload::name(self)
    }

    fn tune<'g>(&self, sim: Sim<'g>) -> Sim<'g> {
        Workload::tune(self, sim)
    }

    fn supports_reference(&self) -> bool {
        Workload::supports_reference(self)
    }

    fn run_fold(&self, sim: &Sim<'_>, w: &mut DigestWriter) -> Result<RunSummary, WorkloadError> {
        fold_lane(self, w, run_workload(self, sim))
    }

    fn supports_batch(&self) -> bool {
        Workload::supports_batch(self)
    }

    fn run_fold_batch(
        &self,
        sim: &Sim<'_>,
        lanes: usize,
        writers: &mut [DigestWriter],
    ) -> Result<Vec<RunSummary>, WorkloadError> {
        assert_eq!(writers.len(), lanes, "one digest writer per lane");
        let batch = (*sim).batch(lanes);
        run_workload_batch(self, &batch)
            .into_iter()
            .zip(writers.iter_mut())
            .map(|(lane, w)| fold_lane(self, w, lane))
            .collect()
    }

    fn prepare_oracle(&self, graph: &WeightedGraph) -> Result<PreparedOracle, WorkloadError> {
        Ok(Box::new(Workload::prepare(self, graph)?))
    }

    fn run_fold_prepared(
        &self,
        sim: &Sim<'_>,
        oracle: &PreparedOracle,
        w: &mut DigestWriter,
    ) -> Result<RunSummary, WorkloadError> {
        let prep = downcast_prep(self, oracle)?.clone();
        fold_lane(self, w, run_workload_prepared(self, sim, prep))
    }

    fn run_fold_batch_prepared(
        &self,
        sim: &Sim<'_>,
        oracle: &PreparedOracle,
        lanes: usize,
        writers: &mut [DigestWriter],
    ) -> Result<Vec<RunSummary>, WorkloadError> {
        assert_eq!(writers.len(), lanes, "one digest writer per lane");
        let prep = downcast_prep(self, oracle)?;
        let preps = vec![prep.clone(); lanes];
        let batch = (*sim).batch(lanes);
        run_workload_batch_prepared(self, &batch, preps)
            .into_iter()
            .zip(writers.iter_mut())
            .map(|(lane, w)| fold_lane(self, w, lane))
            .collect()
    }
}

/// Folds one pipeline result into a digest writer with the
/// outcome-or-run-error discipline every [`DynWorkload`] entry point shares:
/// a [`WorkloadError::Run`] is part of the pinned contract (folded as the
/// error payload, summarized as an error), other errors propagate.
fn fold_lane<W: Workload + ?Sized>(
    workload: &W,
    w: &mut DigestWriter,
    lane: Result<W::Outcome, WorkloadError>,
) -> Result<RunSummary, WorkloadError> {
    match lane {
        Ok(outcome) => {
            workload.fold(w, &outcome);
            Ok(workload.summary(&outcome))
        }
        Err(WorkloadError::Run(error)) => {
            fold_error(w, &error);
            Ok(RunSummary::of_error())
        }
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{LocalView, Outbox};
    use crate::digest::fold_result;
    use lma_graph::generators::ring;
    use lma_graph::weights::WeightStrategy;
    use lma_graph::Port;

    struct Echo {
        rounds_left: usize,
    }

    impl NodeAlgorithm for Echo {
        type Msg = u64;
        type Output = u64;

        fn init(&mut self, view: &LocalView) -> Outbox<u64> {
            (0..view.degree()).map(|p| (p, view.id)).collect()
        }

        fn round(&mut self, _: &LocalView, _: usize, inbox: &[(Port, u64)]) -> Outbox<u64> {
            self.rounds_left = self.rounds_left.saturating_sub(1);
            if self.rounds_left == 0 {
                return Vec::new();
            }
            inbox.iter().map(|&(p, m)| (p, m)).collect()
        }

        fn is_done(&self) -> bool {
            self.rounds_left == 0
        }

        fn output(&self) -> Option<u64> {
            (self.rounds_left == 0).then_some(7)
        }
    }

    fn fleet(n: usize) -> Vec<Echo> {
        (0..n).map(|_| Echo { rounds_left: 4 }).collect()
    }

    #[test]
    fn builder_resolves_to_the_expected_config() {
        let g = ring(6, WeightStrategy::Unit);
        let sim = Sim::on(&g)
            .model(Model::Congest { bits: 16 })
            .round_limit(99)
            .enforce_congest(true)
            .trace(true)
            .threads(3)
            .backing(Backing::Arena);
        let config = sim.config();
        assert_eq!(config.model, Model::Congest { bits: 16 });
        assert_eq!(config.max_rounds, 99);
        assert!(config.enforce_congest);
        assert!(config.trace);
        assert_eq!(config.threads, NonZeroUsize::new(3));
        assert_eq!(config.backing, Backing::Arena);
        assert_eq!(sim.engine(), Engine::Auto);
    }

    #[test]
    fn one_thread_resolves_to_sequential_dispatch() {
        let g = ring(6, WeightStrategy::Unit);
        assert_eq!(Sim::on(&g).threads(1).config().threads, None);
        assert_eq!(Sim::on(&g).threads(0).config().threads, None);
    }

    #[test]
    fn resolved_config_threads_always_match_the_pinned_engine() {
        let g = ring(6, WeightStrategy::Unit);
        let sim = Sim::on(&g).executor(Engine::Sharded(NonZeroUsize::new(4).unwrap()));
        assert_eq!(sim.config().threads, NonZeroUsize::new(4));
        // A non-sharded engine overrides the thread knob in the resolved
        // view — in either builder-call order — so config-driven re-entry
        // cannot contradict the pinned engine.
        for engine in [Engine::Sequential, Engine::Reference] {
            let before = Sim::on(&g).threads(4).executor(engine);
            let after = Sim::on(&g).executor(engine).threads(4);
            assert_eq!(before.config().threads, None, "{engine:?}");
            assert_eq!(after.config().threads, None, "{engine:?}");
        }
        // Auto keeps whatever the threads knob said.
        let sim = Sim::on(&g).threads(4).executor(Engine::Auto);
        assert_eq!(sim.config().threads, NonZeroUsize::new(4));
    }

    #[test]
    fn every_engine_produces_identical_results() {
        let g = ring(12, WeightStrategy::DistinctRandom { seed: 3 });
        let base = Sim::on(&g).trace(true);
        let auto = base.run(fleet(12)).unwrap();
        for engine in [
            Engine::Sequential,
            Engine::Sharded(NonZeroUsize::new(3).unwrap()),
            Engine::Reference,
        ] {
            let got = base.executor(engine).run(fleet(12)).unwrap();
            assert_eq!(auto.outputs, got.outputs, "{engine:?}");
            assert_eq!(auto.stats, got.stats, "{engine:?}");
            assert_eq!(auto.trace, got.trace, "{engine:?}");
        }
    }

    #[test]
    fn engine_labels_are_stable() {
        assert_eq!(Engine::Auto.label(), "auto");
        assert_eq!(Engine::Sequential.label(), "seq");
        assert_eq!(
            Engine::Sharded(NonZeroUsize::new(2).unwrap()).label(),
            "sharded2"
        );
        assert_eq!(Engine::Reference.label(), "push");
    }

    /// A minimal fleet workload covering the blanket impl and the erased
    /// error path.
    struct EchoWorkload {
        round_limit: Option<usize>,
    }

    impl FleetWorkload for EchoWorkload {
        type Prep = ();
        type Program = Echo;
        type Outcome = RunResult<u64>;

        fn name(&self) -> &'static str {
            "echo"
        }

        fn tune<'g>(&self, sim: Sim<'g>) -> Sim<'g> {
            match self.round_limit {
                Some(limit) => sim.round_limit(limit),
                None => sim,
            }
        }

        fn prepare(&self, _graph: &WeightedGraph) -> Result<(), WorkloadError> {
            Ok(())
        }

        fn programs(&self, graph: &WeightedGraph, (): &()) -> Vec<Echo> {
            fleet(graph.node_count())
        }

        fn collate(
            &self,
            _graph: &WeightedGraph,
            (): (),
            result: RunResult<u64>,
        ) -> Result<RunResult<u64>, WorkloadError> {
            Ok(result)
        }

        fn verify(
            &self,
            _graph: &WeightedGraph,
            outcome: &RunResult<u64>,
        ) -> Result<(), WorkloadError> {
            if outcome.outputs.iter().all(|o| *o == Some(7)) {
                Ok(())
            } else {
                Err(WorkloadError::Invalid("wrong echo output".to_string()))
            }
        }

        fn fold(&self, w: &mut DigestWriter, outcome: &RunResult<u64>) {
            fold_result(w, outcome, |w, o| w.u64(*o));
        }

        fn summary(&self, outcome: &RunResult<u64>) -> RunSummary {
            RunSummary::of_stats(&outcome.stats)
        }
    }

    #[test]
    fn run_workload_chains_prepare_execute_verify() {
        let g = ring(9, WeightStrategy::Unit);
        let workload = EchoWorkload { round_limit: None };
        let sim = Workload::tune(&workload, Sim::on(&g));
        let outcome = run_workload(&workload, &sim).unwrap();
        assert_eq!(outcome.stats.rounds, 4);
    }

    #[test]
    fn erased_workload_folds_outcomes_and_run_errors() {
        let g = ring(9, WeightStrategy::Unit);
        let ok: &dyn DynWorkload = &EchoWorkload { round_limit: None };
        let failing: &dyn DynWorkload = &EchoWorkload {
            round_limit: Some(1),
        };

        let mut w = DigestWriter::new();
        let summary = ok.run_fold(&ok.tune(Sim::on(&g)), &mut w).unwrap();
        assert_eq!(summary.rounds, 4);
        let ok_digest = w.finish();

        let mut w = DigestWriter::new();
        let summary = failing
            .run_fold(&failing.tune(Sim::on(&g)), &mut w)
            .unwrap();
        assert_eq!(summary, RunSummary::of_error());
        assert_ne!(
            w.finish(),
            ok_digest,
            "error payloads must re-key the digest"
        );
    }

    #[test]
    fn batched_workload_folds_match_solo_runs_lane_for_lane() {
        let g = ring(9, WeightStrategy::Unit);
        let ok: &dyn DynWorkload = &EchoWorkload { round_limit: None };
        let failing: &dyn DynWorkload = &EchoWorkload {
            round_limit: Some(1),
        };
        assert!(ok.supports_batch(), "fleet workloads batch natively");
        for workload in [ok, failing] {
            let sim = workload.tune(Sim::on(&g));
            let mut solo = DigestWriter::new();
            let solo_summary = workload.run_fold(&sim, &mut solo).unwrap();
            let solo_digest = solo.finish();

            let lanes = 3;
            let mut writers: Vec<DigestWriter> = (0..lanes).map(|_| DigestWriter::new()).collect();
            let summaries = workload.run_fold_batch(&sim, lanes, &mut writers).unwrap();
            assert_eq!(summaries, vec![solo_summary; lanes]);
            for w in writers {
                assert_eq!(w.finish(), solo_digest, "per-lane digest drifted");
            }
        }
    }

    #[test]
    fn cached_oracle_runs_match_fresh_prepares() {
        let g = ring(9, WeightStrategy::Unit);
        let workload: &dyn DynWorkload = &EchoWorkload { round_limit: None };
        let sim = workload.tune(Sim::on(&g));

        let mut fresh = DigestWriter::new();
        let fresh_summary = workload.run_fold(&sim, &mut fresh).unwrap();
        let fresh_digest = fresh.finish();

        let oracle = workload.prepare_oracle(&g).unwrap();
        let mut cached = DigestWriter::new();
        let cached_summary = workload
            .run_fold_prepared(&sim, &oracle, &mut cached)
            .unwrap();
        assert_eq!(cached_summary, fresh_summary);
        assert_eq!(cached.finish(), fresh_digest);

        // The same single oracle serves a whole batch, lane for lane.
        let lanes = 3;
        let mut writers: Vec<DigestWriter> = (0..lanes).map(|_| DigestWriter::new()).collect();
        let summaries = workload
            .run_fold_batch_prepared(&sim, &oracle, lanes, &mut writers)
            .unwrap();
        assert_eq!(summaries, vec![fresh_summary; lanes]);
        for w in writers {
            assert_eq!(w.finish(), fresh_digest, "per-lane digest drifted");
        }
    }

    #[test]
    fn mismatched_oracle_is_a_typed_error_not_a_panic() {
        let g = ring(9, WeightStrategy::Unit);
        let workload: &dyn DynWorkload = &EchoWorkload { round_limit: None };
        let alien: PreparedOracle = Box::new(42u64);
        let mut w = DigestWriter::new();
        match workload.run_fold_prepared(&workload.tune(Sim::on(&g)), &alien, &mut w) {
            Err(WorkloadError::Prepare(msg)) => assert!(msg.contains("echo"), "{msg}"),
            other => panic!("expected a typed prepare error, got {other:?}"),
        }
        let mut writers = vec![DigestWriter::new()];
        assert!(matches!(
            workload.run_fold_batch_prepared(&workload.tune(Sim::on(&g)), &alien, 1, &mut writers),
            Err(WorkloadError::Prepare(_))
        ));
    }

    #[test]
    fn precomputed_partition_runs_are_bit_identical() {
        let g = ring(12, WeightStrategy::DistinctRandom { seed: 3 });
        let base = Sim::on(&g).threads(3).trace(true);
        let fresh = base.run(fleet(12)).unwrap();

        let partition = Partition::new(g.csr(), 3);
        let cached = base.with_partition(&partition).run(fleet(12)).unwrap();
        assert_eq!(fresh.outputs, cached.outputs);
        assert_eq!(fresh.stats, cached.stats);
        assert_eq!(fresh.trace, cached.trace);

        // A shard-count mismatch silently falls back to on-the-fly
        // partitioning — same results, never an error.
        let wrong = Partition::new(g.csr(), 5);
        let fallback = base.with_partition(&wrong).run(fleet(12)).unwrap();
        assert_eq!(fresh.outputs, fallback.outputs);
        assert_eq!(fresh.stats, fallback.stats);

        // And the partition threads through the lockstep batch executor.
        let lanes = 2;
        let fleets: Vec<Vec<Echo>> = (0..lanes).map(|_| fleet(12)).collect();
        let batched = base.with_partition(&partition).batch(lanes);
        for lane in batched.run(fleets).unwrap() {
            let lane = lane.unwrap();
            assert_eq!(fresh.outputs, lane.outputs);
            assert_eq!(fresh.stats, lane.stats);
        }
    }

    #[test]
    fn workload_error_display_is_informative() {
        let e = WorkloadError::from(RunError::RoundLimitExceeded { limit: 3 });
        assert!(e.to_string().contains("3 rounds"));
        assert!(WorkloadError::Prepare("oops".into())
            .to_string()
            .contains("oops"));
        assert!(WorkloadError::Invalid("bad".into())
            .to_string()
            .contains("bad"));
    }
}
