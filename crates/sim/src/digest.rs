//! Deterministic run fingerprints for the scenario regression guard.
//!
//! A simulated run in this workspace is fully deterministic: same graph,
//! same seed, same programs ⇒ same outputs, same [`RunStats`], same errors —
//! on **every** executor and plane backing (pinned by the
//! `runtime_equivalence` suite).  That makes the entire observable transcript
//! of a run fingerprintable: this module folds it into a stable 64-byte
//! [`Digest`] that the `scenarios` binary of `lma-bench` commits to
//! `SCENARIOS.lock` and CI re-verifies, so any behavioral drift in any
//! (graph family × workload × executor × backing) cell fails loudly.
//!
//! Design constraints, in order:
//!
//! * **stability** — the digest is a pinned wire format: fixed little-endian
//!   widths, explicit domain-separation tags, no dependence on platform,
//!   allocator or hash-map iteration order.  Changing anything here
//!   invalidates every committed digest, which is why the mixing constants
//!   and the encoding are spelled out rather than delegated to
//!   `std::hash` (whose output is explicitly not stable across releases);
//! * **no new dependencies** — the mixer is a hand-rolled, xxhash-style
//!   multiply–rotate construction over eight independent 64-bit lanes
//!   (8 × 64 = 512 bits = 64 bytes), wide enough that accidental collisions
//!   across a few hundred committed cells are not a practical concern;
//! * **diffability** — alongside the one-shot digest, [`RunSummary`] keeps a
//!   per-round 16-bit *chain* (one checksum per round, derived from that
//!   round's message count, bit volume, maximum message size and audit
//!   violations), so when a digest drifts the guard can name the **first
//!   diverging round** instead of just "something changed".
//!
//! The digest deliberately excludes the executor and the plane backing:
//! cells that differ only in those knobs must produce bit-identical digests
//! (that invariance is itself asserted by `scenarios verify`).

use crate::runtime::{RunError, RunResult};
use crate::stats::RunStats;

/// Number of 64-bit lanes in a [`Digest`] (64 bytes total).
pub const DIGEST_LANES: usize = 8;

/// A 64-byte (512-bit) run fingerprint, rendered as 128 lowercase hex
/// characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u64; DIGEST_LANES]);

impl Digest {
    /// Parses the 128-hex-character rendering produced by `Display`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() != DIGEST_LANES * 16 || !s.is_ascii() {
            return None;
        }
        let mut lanes = [0u64; DIGEST_LANES];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = u64::from_str_radix(&s[16 * i..16 * (i + 1)], 16).ok()?;
        }
        Some(Self(lanes))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for lane in self.0 {
            write!(f, "{lane:016x}")?;
        }
        Ok(())
    }
}

/// Streaming writer producing a [`Digest`]: bytes are absorbed into eight
/// rotating lanes with an xxhash-style multiply–rotate–xor mix, then
/// avalanched on [`DigestWriter::finish`].
///
/// Every absorbed value is length-framed (`u64` is eight bytes, byte strings
/// are prefixed with their length), so distinct write sequences cannot
/// collide by concatenation.
#[derive(Debug, Clone)]
pub struct DigestWriter {
    lanes: [u64; DIGEST_LANES],
    /// Total bytes absorbed (folds into the finalizer, framing the stream).
    absorbed: u64,
    /// Round-robin cursor over the lanes.
    cursor: usize,
}

/// Odd multiply constants per lane (the xxhash/splitmix constant family).
const LANE_MULT: [u64; DIGEST_LANES] = [
    0x9e37_79b1_85eb_ca87,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x85eb_ca77_c2b2_ae63,
    0x27d4_eb2f_1656_67c5,
    0xff51_afd7_ed55_8ccd,
    0xc4ce_b9fe_1a85_ec53,
    0x2545_f491_4f6c_dd1d,
];

impl Default for DigestWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestWriter {
    /// A writer with the fixed initial state (lane index mixed into each
    /// lane so an all-zero input still distinguishes the lanes).
    #[must_use]
    pub fn new() -> Self {
        let mut lanes = [0u64; DIGEST_LANES];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = LANE_MULT[i].rotate_left(i as u32);
        }
        Self {
            lanes,
            absorbed: 0,
            cursor: 0,
        }
    }

    fn absorb_word(&mut self, word: u64) {
        let lane = &mut self.lanes[self.cursor];
        *lane = (*lane ^ word)
            .wrapping_mul(LANE_MULT[self.cursor])
            .rotate_left(31)
            .wrapping_mul(LANE_MULT[(self.cursor + 3) % DIGEST_LANES]);
        self.cursor = (self.cursor + 1) % DIGEST_LANES;
        self.absorbed = self.absorbed.wrapping_add(8);
    }

    /// Absorbs one `u64` (little-endian, fixed width).
    pub fn u64(&mut self, value: u64) {
        self.absorb_word(value);
    }

    /// Absorbs a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, value: usize) {
        self.u64(value as u64);
    }

    /// Absorbs a byte string, length-framed.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.absorb_word(u64::from_le_bytes(word));
        }
    }

    /// Absorbs a UTF-8 string (its bytes, length-framed) — used for
    /// domain-separation tags such as `"stats"` or a workload name.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Absorbs an optional `u64`: a presence marker, then the value.
    pub fn opt_u64(&mut self, value: Option<u64>) {
        match value {
            Some(v) => {
                self.u64(1);
                self.u64(v);
            }
            None => self.u64(0),
        }
    }

    /// Finalizes: the byte count and a per-lane avalanche (splitmix-style
    /// finalizer) so short inputs still diffuse into every output bit.
    #[must_use]
    pub fn finish(mut self) -> Digest {
        let absorbed = self.absorbed;
        for i in 0..DIGEST_LANES {
            let mut x =
                self.lanes[i] ^ absorbed ^ self.lanes[(i + 1) % DIGEST_LANES].rotate_left(17);
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            self.lanes[i] = x;
        }
        Digest(self.lanes)
    }
}

/// The digestible summary of one run: the aggregate statistics plus the
/// per-round chain used to localize drift.
///
/// Built from a [`RunStats`] (successful runs) or from a [`RunError`]
/// (failed runs fold the exact error payload and carry an empty chain —
/// error *identity* is part of the guarded behavior, see the
/// `runtime_equivalence` error-path tests).
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Rounds executed (0 for failed runs).
    pub rounds: usize,
    /// Total messages sent.
    pub total_messages: u64,
    /// Total message bits sent.
    pub total_bits: u64,
    /// Per-round 16-bit checksums (length = `rounds`), each folding that
    /// round's message count, bit volume, maximum message size and CONGEST
    /// violations.  Two runs of the same scenario diverge first at the first
    /// index where their chains differ.
    pub round_chain: Vec<u16>,
    /// Sparse-frontier schedule profile, present only for programs that
    /// opted into frontier execution ([`crate::NodeAlgorithm::MESSAGE_DRIVEN`]).
    /// Observability only: excluded from equality (the schedule may differ
    /// between executors while every semantic field is bit-identical) and
    /// never folded into digests.
    pub frontier: Option<FrontierProfile>,
}

/// How an opted-in run's rounds were scheduled — printed by `scenarios run`
/// next to the digest, never part of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierProfile {
    /// Rounds gathered sparsely (frontier iteration).
    pub sparse_rounds: usize,
    /// Rounds gathered with the dense all-nodes scan.
    pub dense_rounds: usize,
    /// Largest per-round active-node count observed.
    pub peak_active: u64,
}

impl PartialEq for RunSummary {
    fn eq(&self, other: &Self) -> bool {
        // `frontier` intentionally excluded — see its field docs.
        self.rounds == other.rounds
            && self.total_messages == other.total_messages
            && self.total_bits == other.total_bits
            && self.round_chain == other.round_chain
    }
}

impl Eq for RunSummary {}

/// Folds `(messages, bits, max_bits, violations)` of one round into the
/// 16-bit chain entry.  A fixed multiply–xor–fold; changing it invalidates
/// every committed chain.
#[must_use]
pub fn round_checksum(messages: u64, bits: u64, max_bits: usize, violations: u64) -> u16 {
    let mut x = messages
        .wrapping_mul(LANE_MULT[0])
        .wrapping_add(bits.wrapping_mul(LANE_MULT[1]))
        .wrapping_add((max_bits as u64).wrapping_mul(LANE_MULT[2]))
        .wrapping_add(violations.wrapping_mul(LANE_MULT[3]));
    x ^= x >> 33;
    x = x.wrapping_mul(LANE_MULT[4]);
    x ^= x >> 29;
    (x ^ (x >> 16) ^ (x >> 32) ^ (x >> 48)) as u16
}

impl RunSummary {
    /// The summary of a successful run's statistics.
    #[must_use]
    pub fn of_stats(stats: &RunStats) -> Self {
        let round_chain = (0..stats.rounds)
            .map(|r| {
                round_checksum(
                    stats.per_round_messages[r],
                    stats.per_round_bits[r],
                    stats.per_round_max_bits[r],
                    stats.per_round_violations[r],
                )
            })
            .collect();
        let frontier = (!stats.per_round_active_nodes.is_empty()).then(|| FrontierProfile {
            sparse_rounds: stats.per_round_sparse.iter().filter(|&&s| s).count(),
            dense_rounds: stats.per_round_sparse.iter().filter(|&&s| !s).count(),
            peak_active: stats
                .per_round_active_nodes
                .iter()
                .copied()
                .max()
                .unwrap_or(0),
        });
        Self {
            rounds: stats.rounds,
            total_messages: stats.total_messages,
            total_bits: stats.total_bits,
            round_chain,
            frontier,
        }
    }

    /// The summary of a failed run: zero traffic, empty chain (the error
    /// payload itself is folded by [`fold_error`]).
    #[must_use]
    pub fn of_error() -> Self {
        Self {
            rounds: 0,
            total_messages: 0,
            total_bits: 0,
            round_chain: Vec::new(),
            frontier: None,
        }
    }

    /// Index (0-based round offset) of the first diverging chain entry
    /// against `other`, or `None` when one chain is a prefix of the other
    /// (divergence is then "after round min(len)" — the caller reports the
    /// length mismatch).
    #[must_use]
    pub fn first_divergence(&self, other: &Self) -> Option<usize> {
        self.round_chain
            .iter()
            .zip(&other.round_chain)
            .position(|(a, b)| a != b)
    }
}

/// Folds a full [`RunStats`] — aggregates **and** every per-round series —
/// into `w` under a `"stats"` tag.
pub fn fold_stats(w: &mut DigestWriter, stats: &RunStats) {
    w.str("stats");
    w.usize(stats.rounds);
    w.u64(stats.total_messages);
    w.u64(stats.total_bits);
    w.usize(stats.max_message_bits);
    w.u64(stats.congest_violations);
    for r in 0..stats.rounds {
        w.u64(stats.per_round_messages[r]);
        w.u64(stats.per_round_bits[r]);
        w.usize(stats.per_round_max_bits[r]);
        w.u64(stats.per_round_violations[r]);
    }
}

/// Folds a [`RunError`] payload into `w` under an `"error"` tag, preserving
/// every field (failing the *same way* is part of a scenario's contract).
pub fn fold_error(w: &mut DigestWriter, error: &RunError) {
    w.str("error");
    match error {
        RunError::RoundLimitExceeded { limit } => {
            w.str("round-limit");
            w.usize(*limit);
        }
        RunError::CongestViolation {
            round,
            bits,
            budget,
        } => {
            w.str("congest");
            w.usize(*round);
            w.usize(*bits);
            w.usize(*budget);
        }
        RunError::MalformedOutbox { node, port } => {
            w.str("malformed");
            w.usize(*node);
            w.usize(*port);
        }
    }
}

/// Folds a [`RunResult`] whose per-node outputs can be serialized by
/// `fold_output` — stats first, then each output in node order (presence
/// marker + payload), then the trace when one was recorded.
pub fn fold_result<O>(
    w: &mut DigestWriter,
    result: &RunResult<O>,
    mut fold_output: impl FnMut(&mut DigestWriter, &O),
) {
    fold_stats(w, &result.stats);
    w.str("outputs");
    w.usize(result.outputs.len());
    for output in &result.outputs {
        match output {
            Some(o) => {
                w.u64(1);
                fold_output(w, o);
            }
            None => w.u64(0),
        }
    }
    if let Some(trace) = &result.trace {
        w.str("trace");
        w.usize(trace.len());
        for event in trace {
            w.usize(event.round);
            w.usize(event.from);
            w.usize(event.to);
            w.usize(event.bits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_hex_roundtrip() {
        let mut w = DigestWriter::new();
        w.str("hello");
        w.u64(42);
        let d = w.finish();
        let hex = d.to_string();
        assert_eq!(hex.len(), 128);
        assert_eq!(Digest::parse(&hex), Some(d));
        assert_eq!(Digest::parse("zz"), None);
        assert_eq!(Digest::parse(&hex[..127]), None);
    }

    #[test]
    fn writer_is_deterministic_and_order_sensitive() {
        let run = |values: &[u64]| {
            let mut w = DigestWriter::new();
            for &v in values {
                w.u64(v);
            }
            w.finish()
        };
        assert_eq!(run(&[1, 2, 3]), run(&[1, 2, 3]));
        assert_ne!(run(&[1, 2, 3]), run(&[3, 2, 1]));
        assert_ne!(run(&[1]), run(&[1, 0]));
        assert_ne!(run(&[]), run(&[0]));
    }

    #[test]
    fn byte_strings_are_length_framed() {
        let digest_of = |parts: &[&[u8]]| {
            let mut w = DigestWriter::new();
            for p in parts {
                w.bytes(p);
            }
            w.finish()
        };
        // Same concatenation, different framing: must not collide.
        assert_ne!(digest_of(&[b"ab", b"c"]), digest_of(&[b"a", b"bc"]));
        assert_ne!(digest_of(&[b""]), digest_of(&[]));
    }

    #[test]
    fn round_checksum_separates_nearby_rounds() {
        let a = round_checksum(10, 640, 64, 0);
        assert_eq!(a, round_checksum(10, 640, 64, 0));
        assert_ne!(a, round_checksum(11, 640, 64, 0));
        assert_ne!(a, round_checksum(10, 641, 64, 0));
        assert_ne!(a, round_checksum(10, 640, 65, 0));
        assert_ne!(a, round_checksum(10, 640, 64, 1));
    }

    #[test]
    fn summary_chain_localizes_divergence() {
        let mut stats = RunStats::default();
        stats.record_round(4, 40, 10, 0);
        stats.record_round(6, 60, 12, 0);
        stats.record_round(2, 20, 10, 0);
        let a = RunSummary::of_stats(&stats);
        let mut perturbed = RunStats::default();
        perturbed.record_round(4, 40, 10, 0);
        perturbed.record_round(6, 61, 12, 0);
        perturbed.record_round(2, 20, 10, 0);
        let b = RunSummary::of_stats(&perturbed);
        assert_eq!(a.first_divergence(&b), Some(1));
        assert_eq!(a.first_divergence(&a), None);
    }

    #[test]
    fn error_folds_distinguish_payloads() {
        let digest_of = |e: &RunError| {
            let mut w = DigestWriter::new();
            fold_error(&mut w, e);
            w.finish()
        };
        let a = digest_of(&RunError::RoundLimitExceeded { limit: 5 });
        let b = digest_of(&RunError::RoundLimitExceeded { limit: 6 });
        let c = digest_of(&RunError::MalformedOutbox { node: 5, port: 0 });
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
