//! Lane-striped message planes for fleet batching: one [`PlaneStore`]
//! backend carrying `W` independent runs' slots side by side.
//!
//! A [`BatchPlaneStore`] over `slots` graph slots and `lanes` runs is the
//! underlying backend sized to `slots × lanes` inner slots, addressed in
//! **lane-striped (SoA) order**: graph slot `s`, lane `l` lives at inner
//! slot `s * lanes + l`.  All `W` copies of one graph slot are therefore
//! contiguous — one lane-group per slot — which is what lets the sharded
//! batch executor ship a whole lane-group per boundary slot in one
//! [`PlaneStore::export_boundary`] pass, and what keeps the per-round
//! traversal walking the CSR once for the whole fleet.
//!
//! Nothing about the backends changes: [`BatchInlinePlane`],
//! [`BatchArenaPlane`] and [`BatchHybridPlane`] reuse [`MessagePlane`],
//! [`ArenaPlane`] and [`HybridPlane`] verbatim (occupancy, tagged cells,
//! arena bump buffer, spare recycling, boundary export), so the per-slot
//! semantics pinned by the single-run suites — first write wins, duplicate
//! port surfaces [`SlotOccupied`], a span is delivered once — hold per
//! `(slot, lane)` automatically.
//!
//! One batch-specific operation exists: [`BatchPlaneStore::drain_lane`].
//! When a lane finishes (or fails) mid-batch, its undelivered final-round
//! messages are still sitting in the current plane; the other lanes keep
//! running and the shared plane keeps cycling through
//! [`PlaneStore::reset_round`], whose arena variant asserts the plane was
//! fully drained.  Draining just the finished lane's stripe keeps that
//! invariant (and the recycling pool) intact without stalling the batch.

use crate::plane::{ArenaPlane, HybridPlane, MessagePlane, PlaneStore, SlotOccupied};
use std::marker::PhantomData;

/// Inline-backed batch plane: `Option<M>` lane-striped slots.
pub type BatchInlinePlane<M> = BatchPlaneStore<M, MessagePlane<M>>;

/// Arena-backed batch plane: lane-striped byte spans in one bump arena
/// shared by every lane's traffic for the round.
pub type BatchArenaPlane<M> = BatchPlaneStore<M, ArenaPlane<M>>;

/// Hybrid-backed batch plane: lane-striped 16-byte tagged cells, with
/// oversize messages spilling to the shared bump arena.
pub type BatchHybridPlane<M> = BatchPlaneStore<M, HybridPlane<M>>;

/// Expands per-graph-slot indices into lane-striped inner indices: each
/// global slot `s` becomes the `lanes` consecutive entries
/// `s * lanes .. s * lanes + lanes`.  Used to turn a `Partition` boundary
/// list into the batch boundary list (whole lane-groups per slot).
#[must_use]
pub fn expand_lanes(slots: &[usize], lanes: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(slots.len() * lanes);
    for &slot in slots {
        out.extend(slot * lanes..slot * lanes + lanes);
    }
    out
}

/// A lane-striped message plane: `W` runs' message slots behind one
/// [`PlaneStore`] backend (see the module docs for the layout).
#[derive(Debug)]
pub struct BatchPlaneStore<M, S: PlaneStore<M>> {
    inner: S,
    slots: usize,
    lanes: usize,
    _msg: PhantomData<fn(M) -> M>,
}

impl<M, S: PlaneStore<M>> BatchPlaneStore<M, S> {
    /// A plane with `slots × lanes` empty inner slots.
    #[must_use]
    pub fn new(slots: usize, lanes: usize) -> Self {
        Self {
            inner: S::with_len(slots * lanes),
            slots,
            lanes,
            _msg: PhantomData,
        }
    }

    /// Number of graph slots (per lane).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Resizes to `slots × lanes` and clears everything, reusing the inner
    /// backend's allocations (the pool checkout path).
    pub fn prepare(&mut self, slots: usize, lanes: usize) {
        self.inner.prepare(slots * lanes);
        self.slots = slots;
        self.lanes = lanes;
    }

    /// The lane-striped inner index of `(slot, lane)`.
    #[inline]
    fn striped(&self, slot: usize, lane: usize) -> usize {
        debug_assert!(slot < self.slots && lane < self.lanes);
        slot * self.lanes + lane
    }

    /// Un-stripes an inner [`SlotOccupied`] back into graph-slot space, so
    /// batch error reporting matches the single-run plane's contract.
    fn unstripe(&self, occ: SlotOccupied) -> SlotOccupied {
        SlotOccupied {
            slot: occ.slot / self.lanes,
            len: self.slots,
        }
    }

    /// Stores `msg` into `(slot, lane)`, consuming it.
    ///
    /// # Errors
    /// [`SlotOccupied`] (in graph-slot space) when lane `lane` already wrote
    /// that slot this round; the first message is preserved.
    pub fn store(
        &mut self,
        slot: usize,
        lane: usize,
        msg: M,
        spare: &mut Vec<M>,
    ) -> Result<(), SlotOccupied> {
        let idx = self.striped(slot, lane);
        self.inner
            .store(idx, msg, spare)
            .map_err(|e| self.unstripe(e))
    }

    /// Stores a copy of `msg` into `(slot, lane)` without consuming it.
    ///
    /// # Errors
    /// Exactly as [`BatchPlaneStore::store`].
    pub fn store_ref(&mut self, slot: usize, lane: usize, msg: &M) -> Result<(), SlotOccupied> {
        let idx = self.striped(slot, lane);
        self.inner.store_ref(idx, msg).map_err(|e| self.unstripe(e))
    }

    /// Takes the message out of `(slot, lane)`, if any.
    pub fn fetch(&mut self, slot: usize, lane: usize, spare: &mut Vec<M>) -> Option<M> {
        let idx = self.striped(slot, lane);
        self.inner.fetch(idx, spare)
    }

    /// Resets the plane for the next round of scattering.  The caller
    /// guarantees every *active* lane was drained by the gather pass and
    /// every finished lane by [`BatchPlaneStore::drain_lane`].
    pub fn reset_round(&mut self) {
        self.inner.reset_round();
    }

    /// Drains every slot of `lane`, recycling the messages into `spare`
    /// when the backend recycles — the finished-lane drop-out path (see the
    /// module docs).
    pub fn drain_lane(&mut self, lane: usize, spare: &mut Vec<M>) {
        for slot in 0..self.slots {
            if let Some(msg) = self.inner.fetch(slot * self.lanes + lane, spare) {
                if S::RECYCLES {
                    spare.push(msg);
                }
            }
        }
    }

    /// An exchange buffer covering `positions` boundary slots' whole
    /// lane-groups (`positions × lanes` dense positions).
    #[must_use]
    pub fn new_boundary(positions: usize, lanes: usize) -> S::Boundary {
        S::new_boundary(positions * lanes)
    }

    /// Drains lane-striped boundary indices (`striped_slots`, as produced by
    /// [`expand_lanes`] on global graph slots; this plane's graph slot 0 is
    /// global `striped_base / lanes`) into `out`.  Every position is
    /// overwritten, so stale lane-groups from finished lanes self-clean on
    /// the next export.
    pub fn export_boundary(
        &mut self,
        striped_slots: &[usize],
        striped_base: usize,
        out: &mut S::Boundary,
    ) {
        self.inner.export_boundary(striped_slots, striped_base, out);
    }

    /// Takes the message of lane `lane` at boundary position `pos` (in
    /// graph-slot positions) out of an exchange buffer, if any.
    pub fn fetch_boundary(
        buf: &mut S::Boundary,
        pos: usize,
        lane: usize,
        lanes: usize,
        spare: &mut Vec<M>,
    ) -> Option<M> {
        S::fetch_boundary(buf, pos * lanes + lane, spare)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane_isolated<S: PlaneStore<u64>>() {
        let mut p: BatchPlaneStore<u64, S> = BatchPlaneStore::new(3, 4);
        let mut spare = Vec::new();
        assert_eq!(p.slots(), 3);
        assert_eq!(p.lanes(), 4);
        assert!(p.store(1, 0, 100, &mut spare).is_ok());
        assert!(p.store(1, 3, 103, &mut spare).is_ok());
        // Lane 2 of the same slot is untouched.
        assert_eq!(p.fetch(1, 2, &mut spare), None);
        assert_eq!(p.fetch(1, 3, &mut spare), Some(103));
        assert_eq!(p.fetch(1, 0, &mut spare), Some(100));
        assert_eq!(p.fetch(1, 0, &mut spare), None, "delivered once");
    }

    #[test]
    fn lanes_are_isolated_on_all_backends() {
        lane_isolated::<MessagePlane<u64>>();
        lane_isolated::<ArenaPlane<u64>>();
        lane_isolated::<HybridPlane<u64>>();
    }

    #[test]
    fn duplicate_is_reported_in_graph_slot_space() {
        let mut p: BatchInlinePlane<u64> = BatchPlaneStore::new(5, 8);
        let mut spare = Vec::new();
        assert!(p.store(4, 6, 1, &mut spare).is_ok());
        assert_eq!(
            p.store(4, 6, 2, &mut spare),
            Err(SlotOccupied { slot: 4, len: 5 }),
            "the duplicate must name the graph slot, not the striped index"
        );
        // The same slot in another lane is still free.
        assert!(p.store(4, 7, 3, &mut spare).is_ok());
    }

    fn drained_lane_leaves_others<S: PlaneStore<u64>>() {
        let mut p: BatchPlaneStore<u64, S> = BatchPlaneStore::new(2, 3);
        let mut spare = Vec::new();
        assert!(p.store(0, 1, 7, &mut spare).is_ok());
        assert!(p.store(1, 1, 8, &mut spare).is_ok());
        assert!(p.store(1, 2, 9, &mut spare).is_ok());
        p.drain_lane(1, &mut spare);
        assert_eq!(p.fetch(0, 1, &mut spare), None);
        assert_eq!(p.fetch(1, 1, &mut spare), None);
        assert_eq!(p.fetch(1, 2, &mut spare), Some(9), "lane 2 survives");
        p.reset_round(); // must not trip the arena's drained assertion
    }

    #[test]
    fn drain_lane_empties_only_that_lane() {
        drained_lane_leaves_others::<MessagePlane<u64>>();
        drained_lane_leaves_others::<ArenaPlane<u64>>();
        drained_lane_leaves_others::<HybridPlane<u64>>();
    }

    #[test]
    fn expand_lanes_stripes_whole_lane_groups() {
        assert_eq!(expand_lanes(&[2, 5], 3), vec![6, 7, 8, 15, 16, 17]);
        assert_eq!(expand_lanes(&[0], 1), vec![0]);
        assert!(expand_lanes(&[], 4).is_empty());
    }

    fn boundary_ships_lane_groups<S: PlaneStore<u64>>() {
        // Plane covers global graph slots 10..14, 2 lanes.
        let lanes = 2;
        let mut p: BatchPlaneStore<u64, S> = BatchPlaneStore::new(4, lanes);
        let mut spare = Vec::new();
        assert!(p.store(1, 0, 40, &mut spare).is_ok()); // global slot 11
        assert!(p.store(1, 1, 41, &mut spare).is_ok());
        assert!(p.store(3, 1, 61, &mut spare).is_ok()); // global slot 13
        let boundary = expand_lanes(&[11, 13], lanes);
        let mut buf = BatchPlaneStore::<u64, S>::new_boundary(2, lanes);
        p.export_boundary(&boundary, 10 * lanes, &mut buf);
        assert_eq!(p.fetch(1, 0, &mut spare), None, "exported slots drained");
        assert_eq!(
            BatchPlaneStore::<u64, S>::fetch_boundary(&mut buf, 0, 0, lanes, &mut spare),
            Some(40)
        );
        assert_eq!(
            BatchPlaneStore::<u64, S>::fetch_boundary(&mut buf, 0, 1, lanes, &mut spare),
            Some(41)
        );
        assert_eq!(
            BatchPlaneStore::<u64, S>::fetch_boundary(&mut buf, 1, 0, lanes, &mut spare),
            None
        );
        assert_eq!(
            BatchPlaneStore::<u64, S>::fetch_boundary(&mut buf, 1, 1, lanes, &mut spare),
            Some(61)
        );
        p.reset_round();
    }

    #[test]
    fn boundary_exchange_carries_whole_lane_groups() {
        boundary_ships_lane_groups::<MessagePlane<u64>>();
        boundary_ships_lane_groups::<ArenaPlane<u64>>();
        boundary_ships_lane_groups::<HybridPlane<u64>>();
    }
}
