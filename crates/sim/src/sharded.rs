//! The deterministic sharded executor: shard-parallel rounds over the
//! message plane.
//!
//! The graph's nodes are split into contiguous, slot-balanced shards by
//! [`lma_graph::Partition`].  Each shard is driven by one worker thread that
//! owns the shard's programs and a **private** pair of double-buffered
//! message planes covering only the shard's contiguous slot range, so the
//! scatter and gather of different shards touch disjoint memory by
//! construction — there is no shared mutable plane and no unsafe code.  The
//! planes are generic over the slot backend ([`crate::plane::PlaneStore`]):
//! inline `Option<M>` slots or per-shard byte arenas, selected by
//! [`RunConfig::backing`].
//!
//! Cross-shard traffic travels through dense, preallocated **exchange
//! buffers**: one buffer per ordered shard pair `(s, t)` and round parity,
//! sized by the partition's boundary-slot list.  The buffer type comes from
//! the backend ([`PlaneStore::Boundary`]): owned `Option<M>` values for the
//! inline backing, *copied encoded byte spans* for the arena backing (the
//! consumer decodes them into its own recycled messages, so no shard ever
//! reads another shard's arena).  At the end of its round, a worker drains
//! the boundary slots of its freshly scattered plane into its outgoing
//! buffers; at the start of the next round the receiving worker takes the
//! buffers whole and gathers from them by the partition's precomputed
//! cross-reference positions.  Parity alternation makes the buffer a
//! single-producer/single-consumer hand-off separated by a barrier, so the
//! per-buffer `Mutex` is never contended.
//!
//! **Cache hygiene.**  Exchange buffers and per-shard report slots are
//! wrapped in `CachePadded` (64-byte aligned) so that adjacent shards'
//! hot `Mutex` words never share a cache line — uncontended locks stay
//! uncontended at the coherence level too.  The buffers are created
//! *empty* on the caller thread; each worker allocates and first-touches
//! its own outgoing buffers (both parities) before its first publish, so
//! a buffer's backing pages are faulted in by the thread that writes it
//! every round (first-touch NUMA placement).  This is race-free: a
//! producer only writes its own `(s, t)` buffers and every consumer first
//! reads after the first barrier cycle, which orders all first-touches
//! before all reads.  Workers already build their private plane pairs
//! inside their own threads for the same reason.
//!
//! Each round costs exactly one barrier cycle (two `Barrier::wait`s): after
//! every worker has published its per-shard report, the barrier leader
//! merges the reports **in shard order** — sums and maxima for
//! [`RunStats`], the first pending error in node order, trace events in
//! shard order — and decides whether to continue, so outputs, stats, traces
//! and error cases are bit-identical to the sequential executor.  The
//! `runtime_equivalence` integration suite pins this.
//!
//! A panic inside a node program is caught by the owning worker, reported
//! through the same channel, and re-raised on the calling thread with the
//! original payload — exactly the observable behavior of the sequential
//! executor, and the other workers shut down cleanly instead of deadlocking
//! at the barrier.

use crate::algorithm::{LocalView, MsgSink, NodeAlgorithm};
use crate::frontier::NodeSet;
use crate::plane::{ArenaPlane, Backing, HybridPlane, MessagePlane, PlaneStore};
use crate::runtime::{PendingError, PendingRound, RunConfig, RunError, RunResult, Scatter};
use crate::stats::RunStats;
use crate::trace::TraceEvent;
use lma_graph::{Partition, Port, WeightedGraph};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Barrier, Mutex};

/// Pads (and aligns) `T` to a 64-byte cache line so adjacent entries of a
/// `Vec<CachePadded<T>>` never false-share: each shard's exchange-buffer
/// mutexes and report slot live on their own lines.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct CachePadded<T>(pub(crate) T);

/// What the barrier leader tells every worker to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    /// Execute communication round `round` (gather, step, scatter, drain).
    Work { round: usize },
    /// The run is over (success, failure or panic); exit the worker loop.
    Stop,
}

/// One shard's contribution to the round about to be committed.
#[derive(Default)]
struct ShardReport {
    messages: u64,
    bits: u64,
    max_bits: usize,
    violations: u64,
    error: Option<PendingError>,
    events: Vec<TraceEvent>,
    done_delta: usize,
    panic: Option<Box<dyn Any + Send>>,
    /// Frontier words this shard marked for the upcoming round (full-`n`
    /// bitset: cross-shard `put`s mark remote nodes too), with the shard's
    /// own eager nodes pre-ORed in.  Empty unless the program opted into
    /// frontier execution.
    frontier: Vec<u64>,
}

/// Leader-owned global state, read by the caller after the scope joins.
struct Control {
    /// Committed rounds so far.
    round: usize,
    done_count: usize,
    stats: RunStats,
    events: Vec<TraceEvent>,
    command: Command,
    failure: Option<RunError>,
    panic: Option<Box<dyn Any + Send>>,
    /// Whether the program opted into frontier execution
    /// (`A::MESSAGE_DRIVEN`) — set once at startup, drives the leader's
    /// merge and the fields below.
    track_frontier: bool,
    /// The merged global frontier for the round just commanded (leader
    /// writes in `coordinate`, workers copy their node-range slice after
    /// the second barrier).
    frontier: NodeSet,
    /// The leader's dense-vs-sparse decision for that round.
    sparse: bool,
}

struct Shared<M, S: PlaneStore<M>> {
    barrier: Barrier,
    /// `pair_bufs[parity][s * k + t]`: the exchange buffer carrying shard
    /// `s`'s boundary traffic to shard `t` for rounds of that parity, dense
    /// over `partition.boundary(s, t)` positions.  Created empty; worker
    /// `s` sizes and first-touches its own `(s, *)` buffers before its
    /// first publish (see the module docs).
    pair_bufs: [Vec<CachePadded<Mutex<S::Boundary>>>; 2],
    reports: Vec<CachePadded<Mutex<ShardReport>>>,
    control: Mutex<Control>,
}

/// Runs `programs` with one worker thread per shard of `partition`,
/// dispatching the plane backend on [`RunConfig::backing`].
///
/// Semantics match [`crate::Runtime::run`] exactly; only the schedule (and
/// the wall-clock) differ.  The caller provides the per-node `views` so a
/// harness can reuse them across runs.
pub(crate) fn run_sharded<A: NodeAlgorithm>(
    graph: &WeightedGraph,
    config: RunConfig,
    partition: &Partition,
    views: &[LocalView],
    programs: Vec<A>,
) -> Result<RunResult<A::Output>, RunError> {
    match config.backing {
        Backing::Inline => {
            run_sharded_on::<MessagePlane<A::Msg>, A>(graph, config, partition, views, programs)
        }
        Backing::Arena => {
            run_sharded_on::<ArenaPlane<A::Msg>, A>(graph, config, partition, views, programs)
        }
        Backing::Hybrid => {
            run_sharded_on::<HybridPlane<A::Msg>, A>(graph, config, partition, views, programs)
        }
    }
}

fn run_sharded_on<S: PlaneStore<A::Msg>, A: NodeAlgorithm>(
    graph: &WeightedGraph,
    config: RunConfig,
    partition: &Partition,
    views: &[LocalView],
    mut programs: Vec<A>,
) -> Result<RunResult<A::Output>, RunError> {
    let n = graph.node_count();
    assert_eq!(programs.len(), n, "one program per node is required");
    assert_eq!(
        partition.node_count(),
        n,
        "partition covers a different graph"
    );
    assert_eq!(
        partition.slot_count(),
        graph.csr().slot_count(),
        "partition covers a different slot space"
    );
    let k = partition.shard_count();
    if k <= 1 {
        return crate::Runtime::with_config(graph, config).run_sequential(programs);
    }
    let budget = config.model.budget();

    // Split the programs into per-shard chunks (node order is preserved:
    // shard s owns the contiguous node range partition.node_range(s)).
    let mut per_shard: Vec<Vec<A>> = Vec::with_capacity(k);
    {
        let mut drain = programs.drain(..);
        for s in 0..k {
            per_shard.push(drain.by_ref().take(partition.node_range(s).len()).collect());
        }
    }

    // Buffers start empty on the caller thread; each worker sizes and
    // first-touches its own outgoing buffers (see the module docs).
    let make_bufs = || {
        (0..k * k)
            .map(|_| CachePadded(Mutex::new(S::Boundary::default())))
            .collect()
    };
    let shared: Shared<A::Msg, S> = Shared {
        barrier: Barrier::new(k),
        pair_bufs: [make_bufs(), make_bufs()],
        reports: (0..k)
            .map(|_| CachePadded(Mutex::new(ShardReport::default())))
            .collect(),
        control: Mutex::new(Control {
            round: 0,
            done_count: 0,
            stats: RunStats::default(),
            events: Vec::new(),
            command: Command::Stop,
            failure: None,
            panic: None,
            track_frontier: A::MESSAGE_DRIVEN,
            frontier: if A::MESSAGE_DRIVEN {
                NodeSet::new(n)
            } else {
                NodeSet::default()
            },
            sparse: false,
        }),
    };

    let mut shard_programs: Vec<Vec<A>> = Vec::with_capacity(k);
    std::thread::scope(|scope| {
        let handles: Vec<_> = per_shard
            .into_iter()
            .enumerate()
            .map(|(s, progs)| {
                let shared = &shared;
                scope.spawn(move || {
                    worker(s, progs, graph, config, partition, views, shared, budget)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(progs) => shard_programs.push(progs),
                // A panic that escaped the worker's own catch (an executor
                // bug, not a program bug): re-raise it here.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let control = shared.control.into_inner().unwrap();
    if let Some(payload) = control.panic {
        std::panic::resume_unwind(payload);
    }
    if let Some(err) = control.failure {
        return Err(err);
    }
    let outputs = shard_programs
        .iter()
        .flat_map(|progs| progs.iter().map(NodeAlgorithm::output))
        .collect();
    let mut events = control.events;
    Ok(RunResult {
        outputs,
        stats: control.stats,
        trace: config.trace.then(|| {
            events.sort_by_key(|e| (e.round, e.from, e.to));
            events
        }),
    })
}

/// The per-shard worker: init, then one barrier cycle per round until the
/// leader commands a stop.  Returns the shard's programs so the caller can
/// collate outputs.
#[allow(clippy::too_many_arguments)]
fn worker<S: PlaneStore<A::Msg>, A: NodeAlgorithm>(
    s: usize,
    mut programs: Vec<A>,
    graph: &WeightedGraph,
    config: RunConfig,
    partition: &Partition,
    views: &[LocalView],
    shared: &Shared<A::Msg, S>,
    budget: Option<usize>,
) -> Vec<A> {
    let k = partition.shard_count();
    let csr = graph.csr();
    let offsets = csr.offsets();
    let mirror = csr.mirror_table();
    let incident = csr.incident_flat();
    let nodes = partition.node_range(s);
    let slots = partition.slot_range(s);
    let slot_base = slots.start;

    let mut cur: S = S::with_len(slots.len());
    let mut next: S = S::with_len(slots.len());
    let mut inbox: Vec<(Port, A::Msg)> = Vec::new();
    let mut spare: Vec<A::Msg> = Vec::new();
    let mut pending = PendingRound::default();
    let mut incoming: Vec<S::Boundary> = (0..k).map(|_| S::Boundary::default()).collect();

    // Frontier state (opted-in programs only; empty and compiled out
    // otherwise).  All three are full-`n` bitsets: a shard's scatter can
    // mark *remote* destination nodes, and the leader merges every shard's
    // words into one global frontier.  `eager_front` carries only this
    // shard's own non-message-driven nodes; it is pre-ORed into every
    // published frontier so the leader's union is complete without knowing
    // the programs.
    let n = partition.node_count();
    let mut local_front = NodeSet::default();
    let mut eager_front = NodeSet::default();
    let mut gather_front = NodeSet::default();
    let mut use_sparse = false;
    if A::MESSAGE_DRIVEN {
        eager_front = NodeSet::new(n);
        for (i, u) in nodes.clone().enumerate() {
            if !programs[i].message_driven() {
                eager_front.insert(u);
            }
        }
        local_front = eager_front.clone();
        gather_front = NodeSet::new(n);
    }

    // First-touch: allocate this shard's outgoing exchange buffers (both
    // parities) on this thread, before the first publish.  Consumers only
    // read them after the first barrier cycle, so this is race-free.
    for parity in 0..2 {
        for t in 0..k {
            let boundary = partition.boundary(s, t);
            if boundary.is_empty() {
                continue;
            }
            *shared.pair_bufs[parity][s * k + t].0.lock().unwrap() =
                S::new_boundary(boundary.len());
        }
    }

    // Initialization: round-0 local computation producing round-1 traffic,
    // scattered into `cur` and drained into the parity-1 exchange buffers.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let mut done_delta = 0usize;
        for (i, u) in nodes.clone().enumerate() {
            let mut scatter = Scatter {
                node: u,
                base: offsets[u],
                degree: offsets[u + 1] - offsets[u],
                delivery_round: 1,
                plane: &mut cur,
                plane_offset: slot_base,
                spare: &mut spare,
                pending: &mut pending,
                incident,
                budget,
                enforce_congest: config.enforce_congest,
                trace: config.trace,
                frontier: A::MESSAGE_DRIVEN.then_some(&mut local_front),
            };
            programs[i].init_into(&views[u], &mut MsgSink::new(&mut scatter));
            if programs[i].is_done() {
                done_delta += 1;
            }
        }
        done_delta
    }));
    publish(
        s,
        shared,
        partition,
        &mut cur,
        slot_base,
        1,
        &mut pending,
        caught,
        A::MESSAGE_DRIVEN.then_some(&local_front),
    );
    if A::MESSAGE_DRIVEN {
        local_front.copy_from(&eager_front);
    }

    loop {
        let leader = shared.barrier.wait().is_leader();
        if leader {
            coordinate(shared, &config, n_of(partition), budget);
        }
        shared.barrier.wait();
        let round = {
            let ctl = shared.control.lock().unwrap();
            let round = match ctl.command {
                Command::Stop => break,
                Command::Work { round } => round,
            };
            if A::MESSAGE_DRIVEN {
                gather_front.copy_from(&ctl.frontier);
                use_sparse = ctl.sparse;
            }
            round
        };
        let read_parity = round & 1;

        // Take this round's incoming exchange buffers whole; they are put
        // back (fully drained) after the gather pass.
        for (src, buf) in incoming.iter_mut().enumerate() {
            if src != s && !partition.boundary(src, s).is_empty() {
                *buf = std::mem::take(
                    &mut *shared.pair_bufs[read_parity][src * k + s].0.lock().unwrap(),
                );
            }
        }

        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut done_delta = 0usize;
            // One shard-local gather → step body, shared by the dense scan
            // and the sparse frontier iteration (in sparse mode nobody
            // stored into a skipped node's slots or buffer positions, so
            // the drain invariant holds shard-locally too).
            macro_rules! gather_step {
                ($i:expr, $v:expr) => {{
                    let (i, v): (usize, usize) = ($i, $v);
                    if S::RECYCLES {
                        spare.extend(inbox.drain(..).map(|(_, m)| m));
                    } else {
                        inbox.clear();
                    }
                    let base = offsets[v];
                    // Gather in port order: intra-shard mirrors from the private
                    // plane, cross-shard mirrors from the exchange buffers.
                    // Unconditional (done nodes too), so every slot and buffer
                    // position is drained each round.
                    for (p, &sender_slot) in mirror[base..offsets[v + 1]].iter().enumerate() {
                        let msg = if slots.contains(&sender_slot) {
                            cur.fetch(sender_slot - slot_base, &mut spare)
                        } else {
                            let (src, pos) = partition
                                .cross_ref(sender_slot)
                                .expect("out-of-shard mirror slot must be a boundary slot");
                            S::fetch_boundary(&mut incoming[src], pos, &mut spare)
                        };
                        if let Some(msg) = msg {
                            inbox.push((p, msg));
                        }
                    }
                    if !programs[i].is_done() {
                        let mut scatter = Scatter {
                            node: v,
                            base,
                            degree: offsets[v + 1] - base,
                            delivery_round: round + 1,
                            plane: &mut next,
                            plane_offset: slot_base,
                            spare: &mut spare,
                            pending: &mut pending,
                            incident,
                            budget,
                            enforce_congest: config.enforce_congest,
                            trace: config.trace,
                            frontier: A::MESSAGE_DRIVEN.then_some(&mut local_front),
                        };
                        programs[i].round_into(
                            &views[v],
                            round,
                            &inbox,
                            &mut MsgSink::new(&mut scatter),
                        );
                        if programs[i].is_done() {
                            done_delta += 1;
                        }
                    }
                }};
            }
            if use_sparse {
                for v in gather_front.ones_in(nodes.start, nodes.end) {
                    gather_step!(v - nodes.start, v);
                }
            } else {
                for (i, v) in nodes.clone().enumerate() {
                    gather_step!(i, v);
                }
            }
            done_delta
        }));

        // Return the (drained) incoming buffers for their producers to
        // refill two phases from now.
        for (src, buf) in incoming.iter_mut().enumerate() {
            if src != s && !partition.boundary(src, s).is_empty() {
                *shared.pair_bufs[read_parity][src * k + s].0.lock().unwrap() = std::mem::take(buf);
            }
        }

        // The private plane pair swaps exactly like the sequential
        // executor's; the freshly scattered plane then has its boundary
        // slots drained into the next parity's exchange buffers.
        std::mem::swap(&mut cur, &mut next);
        next.reset_round();
        publish(
            s,
            shared,
            partition,
            &mut cur,
            slot_base,
            (round + 1) & 1,
            &mut pending,
            caught,
            A::MESSAGE_DRIVEN.then_some(&local_front),
        );
        if A::MESSAGE_DRIVEN {
            local_front.copy_from(&eager_front);
        }
    }
    programs
}

fn n_of(partition: &Partition) -> usize {
    partition.node_count()
}

/// Drains the boundary slots of `plane` into this shard's outgoing exchange
/// buffers for `parity`, then publishes the shard's report for the round
/// (including, for opted-in programs, the shard's frontier words).
#[allow(clippy::too_many_arguments)]
fn publish<M, S: PlaneStore<M>>(
    s: usize,
    shared: &Shared<M, S>,
    partition: &Partition,
    plane: &mut S,
    slot_base: usize,
    parity: usize,
    pending: &mut PendingRound,
    caught: Result<usize, Box<dyn Any + Send>>,
    frontier: Option<&NodeSet>,
) {
    let k = partition.shard_count();
    if caught.is_ok() {
        for t in 0..k {
            let boundary = partition.boundary(s, t);
            if boundary.is_empty() {
                continue;
            }
            let mut buf = shared.pair_bufs[parity][s * k + t].0.lock().unwrap();
            plane.export_boundary(boundary, slot_base, &mut buf);
            drop(buf);
        }
    }
    let mut report = shared.reports[s].0.lock().unwrap();
    report.messages = pending.messages;
    report.bits = pending.bits;
    report.max_bits = pending.max_bits;
    report.violations = pending.violations;
    report.error = pending.error.take();
    report.events = std::mem::take(&mut pending.events);
    if let Some(front) = frontier {
        report.frontier.clear();
        report.frontier.extend_from_slice(front.words());
    }
    match caught {
        Ok(done_delta) => report.done_delta = done_delta,
        Err(payload) => report.panic = Some(payload),
    }
    pending.reset();
}

/// The barrier leader's merge step, run between the two barrier waits while
/// every other worker is parked: fold the per-shard reports **in shard
/// order** into the global state and decide the next command.  The ordering
/// reproduces the sequential executor exactly: done-check, round-limit
/// check, then the round commit (first pending error in node order wins;
/// stats and trace only on a clean commit).
fn coordinate<M, S: PlaneStore<M>>(
    shared: &Shared<M, S>,
    config: &RunConfig,
    n: usize,
    budget: Option<usize>,
) {
    let mut ctl = shared.control.lock().unwrap();
    let mut messages = 0u64;
    let mut bits = 0u64;
    let mut max_bits = 0usize;
    let mut violations = 0u64;
    let mut error: Option<PendingError> = None;
    let mut panic: Option<Box<dyn Any + Send>> = None;
    let mut round_events: Vec<TraceEvent> = Vec::new();
    if ctl.track_frontier {
        ctl.frontier.clear_all();
    }
    for slot in shared.reports.iter() {
        let mut report = slot.0.lock().unwrap();
        if ctl.track_frontier {
            ctl.frontier.or_words(&report.frontier);
        }
        ctl.done_count += report.done_delta;
        report.done_delta = 0;
        messages += report.messages;
        bits += report.bits;
        max_bits = max_bits.max(report.max_bits);
        violations += report.violations;
        report.messages = 0;
        report.bits = 0;
        report.max_bits = 0;
        report.violations = 0;
        if error.is_none() {
            error = report.error.take();
        } else {
            report.error = None;
        }
        if panic.is_none() {
            panic = report.panic.take();
        } else {
            report.panic = None;
        }
        if config.trace {
            round_events.append(&mut report.events);
        } else {
            report.events.clear();
        }
    }

    // A program panic preempts everything, exactly as it would have unwound
    // out of the sequential round loop.
    if let Some(payload) = panic {
        ctl.panic = Some(payload);
        ctl.command = Command::Stop;
        return;
    }
    if ctl.done_count >= n {
        ctl.command = Command::Stop;
        return;
    }
    if ctl.round >= config.max_rounds {
        ctl.failure = Some(RunError::RoundLimitExceeded {
            limit: config.max_rounds,
        });
        ctl.command = Command::Stop;
        return;
    }
    ctl.round += 1;
    match error {
        Some(PendingError::Malformed { node, port }) => {
            ctl.failure = Some(RunError::MalformedOutbox { node, port });
            ctl.command = Command::Stop;
        }
        Some(PendingError::Congest { bits }) => {
            ctl.failure = Some(RunError::CongestViolation {
                round: ctl.round,
                bits,
                budget: budget.expect("congest error implies a budget"),
            });
            ctl.command = Command::Stop;
        }
        None => {
            ctl.stats.record_round(messages, bits, max_bits, violations);
            if ctl.track_frontier {
                let active = ctl.frontier.count();
                let sparse = config.frontier.use_sparse(active, n);
                ctl.sparse = sparse;
                ctl.stats.record_frontier(active as u64, sparse);
            }
            if config.trace {
                ctl.events.append(&mut round_events);
            }
            ctl.command = Command::Work { round: ctl.round };
        }
    }
}
