//! Communication models.

/// The communication model the simulator runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// The LOCAL model: unbounded message size per edge per round.
    Local,
    /// The CONGEST(B) model: at most `bits` bits per message.  The runtime
    /// records violations and (optionally) aborts the run on the first one.
    Congest {
        /// The per-message bit budget `B`.
        bits: usize,
    },
}

impl Model {
    /// The conventional CONGEST model with `B = Θ(log n)`: we use
    /// `4·⌈log₂ n⌉ + 16` bits, enough for a constant number of node
    /// identifiers / weights-ranks plus a small tag, which is what "messages
    /// of size O(log n)" means in the paper.
    #[must_use]
    pub fn congest_for(n: usize) -> Self {
        let log = crate::message::bits_for_universe(n.max(2));
        Model::Congest { bits: 4 * log + 16 }
    }

    /// The per-message budget, if bounded.
    #[must_use]
    pub fn budget(&self) -> Option<usize> {
        match self {
            Model::Local => None,
            Model::Congest { bits } => Some(*bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congest_budget_scales_with_log_n() {
        let small = Model::congest_for(16).budget().unwrap();
        let large = Model::congest_for(1 << 20).budget().unwrap();
        assert!(small < large);
        assert_eq!(small, 4 * 4 + 16);
        assert_eq!(large, 4 * 20 + 16);
    }

    #[test]
    fn local_has_no_budget() {
        assert_eq!(Model::Local.budget(), None);
    }
}
