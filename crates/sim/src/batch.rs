//! The batch executor: `W` independent simulations run in lockstep over
//! **one** graph traversal.
//!
//! The paper's evaluation shape is many same-program runs on a shared
//! topology — different seeds, advice strings and root choices.  Running
//! them one at a time re-walks the same CSR adjacency `W` times.  A
//! [`BatchSim`] (built with [`Sim::batch`]) instead runs a *fleet of
//! fleets*: `fleets[l][u]` is the program node `u` runs in lane `l`, and
//! every round the executor walks the CSR **once**, stepping each node's
//! `W` lane programs back to back while their messages live side by side in
//! one lane-striped [`BatchPlaneStore`].  Graph traversal, plane
//! management, the plane pool checkout and (under the sharded engine) the
//! `Partition` and its boundary exchange are all amortized across the whole
//! batch — the FRAIG-style word-parallel simulation idea applied at the
//! executor level, with [`crate::lanes`] providing the genuinely word-packed
//! variant for bit-sized payloads.
//!
//! **Per-lane semantics are exactly the single-run semantics.**  Each lane
//! carries its own `PendingRound` accounting, its own [`RunStats`], trace
//! and error state; a lane that finishes (or fails) drops out of the batch
//! through the per-lane done-bitmask ([`LaneWords`]) without stalling the
//! others, draining its message stripe so the shared plane's round-reset
//! invariants hold.  `batched(W)` is therefore bit-for-bit equal to `W`
//! sequential runs — outputs, stats, traces, errors, and golden digests —
//! which the `runtime_equivalence` suite and the scenario registry's batch
//! cells pin at `W ∈ {1, 2, 8, 64}`.

use crate::algorithm::{MsgSink, NodeAlgorithm, SendSlot};
use crate::batch_plane::BatchPlaneStore;
use crate::driver::{Engine, Sim};
use crate::frontier::BatchFrontier;
use crate::lanes::LaneWords;
use crate::message::BitSized;
use crate::plane::{ArenaPlane, Backing, HybridPlane, MessagePlane, PlaneStore};
use crate::pool;
use crate::runtime::{PendingError, PendingRound, RunConfig, RunError, RunResult, Runtime};
use crate::stats::RunStats;
use crate::trace::TraceEvent;
use lma_graph::{IncidentEdge, Partition, Port};

/// The per-lane outcomes of a batch run: one entry per lane, index for
/// index with the `fleets` handed to [`BatchSim::run`], each exactly what
/// [`Sim::run`] would have returned for that fleet alone.
pub type LaneResults<O> = Vec<Result<RunResult<O>, RunError>>;

/// A configured batch of `W` lockstep simulations: a [`Sim`] plus a lane
/// count.  Built with [`Sim::batch`]; see the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct BatchSim<'g> {
    sim: Sim<'g>,
    lanes: usize,
}

impl<'g> BatchSim<'g> {
    pub(crate) fn new(sim: Sim<'g>, lanes: usize) -> Self {
        Self { sim, lanes }
    }

    /// The underlying single-run simulation (graph + every run knob).
    #[must_use]
    pub fn sim(&self) -> &Sim<'g> {
        &self.sim
    }

    /// The lane count `W`.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs `W` program fleets in lockstep: `fleets[l][u]` is the program
    /// node `u` runs in lane `l`.  Returns one per-lane result, index for
    /// index with `fleets` — each exactly what [`Sim::run`] would have
    /// returned for that fleet alone (a failing lane reports its own error;
    /// the other lanes complete).
    ///
    /// Dispatches like [`Sim::run`]: the sharded engine tiles shard × lane
    /// (one barrier cycle per round for the whole batch), the reference
    /// engine falls back to per-lane oracle runs, everything else runs the
    /// sequential lockstep loop on the configured plane backing.
    pub fn run<A: NodeAlgorithm>(
        &self,
        fleets: Vec<Vec<A>>,
    ) -> Result<LaneResults<A::Output>, BatchShapeError> {
        if fleets.len() != self.lanes {
            return Err(BatchShapeError {
                expected: self.lanes,
                got: fleets.len(),
            });
        }
        if self.lanes == 0 {
            return Ok(Vec::new());
        }
        let graph = self.sim.graph();
        let config = self.sim.config();
        if self.sim.engine() == Engine::Reference {
            // The push-based oracle has no plane to stripe; run the lanes
            // through it one by one (differential-testing path only).
            return Ok(fleets.into_iter().map(|f| self.sim.run(f)).collect());
        }
        if let Some(threads) = config.threads {
            if threads.get() > 1 && graph.node_count() > 1 {
                let views = Runtime::with_config(graph, config).local_views();
                // A precomputed partition supplied via `Sim::with_partition`
                // is amortized across the batch exactly as in `Sim::run`.
                return Ok(match self.sim.usable_partition(threads.get()) {
                    Some(partition) => crate::batch_sharded::run_batch_sharded(
                        graph, config, partition, &views, fleets,
                    ),
                    None => {
                        let partition = Partition::new(graph.csr(), threads.get());
                        crate::batch_sharded::run_batch_sharded(
                            graph, config, &partition, &views, fleets,
                        )
                    }
                });
            }
        }
        Ok(run_batch_sequential(graph, config, fleets))
    }
}

/// The batch was handed the wrong number of fleets (`fleets.len() != W`).
/// Shape errors are the caller's bug, not a lane outcome, so they surface
/// separately from the per-lane [`RunError`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchShapeError {
    /// The batch's configured lane count.
    pub expected: usize,
    /// The number of fleets actually supplied.
    pub got: usize,
}

impl std::fmt::Display for BatchShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch of {} lanes was handed {} fleets",
            self.expected, self.got
        )
    }
}

impl std::error::Error for BatchShapeError {}

impl<'g> Sim<'g> {
    /// Turns this simulation into a batch of `lanes` lockstep runs sharing
    /// one traversal (see [`BatchSim`] and the [`crate::batch`] docs).
    #[must_use]
    pub fn batch(self, lanes: usize) -> BatchSim<'g> {
        BatchSim::new(self, lanes)
    }
}

/// The lane-aware scatter sink: the batch executors' counterpart of the
/// single-run `Scatter`, storing into `(slot, lane)` of a lane-striped
/// plane while accumulating that lane's own [`PendingRound`].  Validation,
/// accounting and error latching are copied line for line so the per-lane
/// error semantics (first fatal event wins, surfaced at delivery) match the
/// single-run executor exactly.
pub(crate) struct BatchScatter<'a, M, S: PlaneStore<M>> {
    pub node: usize,
    /// First slot of `node` in the global slot space (`offsets[node]`).
    pub base: usize,
    pub degree: usize,
    pub delivery_round: usize,
    pub plane: &'a mut BatchPlaneStore<M, S>,
    /// Global index of the plane's graph slot 0 (0 sequential, the shard's
    /// first slot under the sharded engine).
    pub plane_offset: usize,
    pub lane: usize,
    pub spare: &'a mut Vec<M>,
    pub pending: &'a mut PendingRound,
    pub incident: &'a [IncidentEdge],
    pub budget: Option<usize>,
    pub enforce_congest: bool,
    pub trace: bool,
    /// When the program opts into sparse frontier execution
    /// ([`NodeAlgorithm::MESSAGE_DRIVEN`]), every successfully stored
    /// message marks `(destination, lane)` here; `None` compiles the
    /// marking away.
    pub frontier: Option<&'a mut BatchFrontier>,
}

impl<M: BitSized, S: PlaneStore<M>> BatchScatter<'_, M, S> {
    fn accept(&mut self, port: Port) -> Option<usize> {
        if self.pending.error.is_some() {
            return None;
        }
        if port >= self.degree {
            self.pending.error = Some(PendingError::Malformed {
                node: self.node,
                port,
            });
            return None;
        }
        Some(self.base + port)
    }

    fn reject(&mut self, occupied: crate::plane::SlotOccupied) {
        // `occupied.slot` is already back in graph-slot space (the batch
        // plane un-stripes it), so the mapping matches the single-run path.
        self.pending.error = Some(PendingError::Malformed {
            node: self.node,
            port: occupied.slot + self.plane_offset - self.base,
        });
    }

    fn account(&mut self, slot: usize, size: usize) {
        if let Some(front) = self.frontier.as_deref_mut() {
            front.mark(self.incident[slot].neighbor, self.lane);
        }
        self.pending.messages += 1;
        self.pending.bits += size as u64;
        self.pending.max_bits = self.pending.max_bits.max(size);
        if let Some(b) = self.budget {
            if size > b {
                if self.enforce_congest {
                    self.pending.error = Some(PendingError::Congest { bits: size });
                    return;
                }
                self.pending.violations += 1;
            }
        }
        if self.trace {
            self.pending.events.push(TraceEvent {
                round: self.delivery_round,
                from: self.node,
                to: self.incident[slot].neighbor,
                bits: size,
            });
        }
    }
}

impl<M: BitSized, S: PlaneStore<M>> SendSlot<M> for BatchScatter<'_, M, S> {
    fn send(&mut self, port: Port, msg: M) {
        let Some(slot) = self.accept(port) else {
            return;
        };
        let size = msg.bit_size();
        match self
            .plane
            .store(slot - self.plane_offset, self.lane, msg, self.spare)
        {
            Ok(()) => self.account(slot, size),
            Err(occupied) => self.reject(occupied),
        }
    }

    fn send_ref(&mut self, port: Port, msg: &M) {
        let Some(slot) = self.accept(port) else {
            return;
        };
        let size = msg.bit_size();
        match self
            .plane
            .store_ref(slot - self.plane_offset, self.lane, msg)
        {
            Ok(()) => self.account(slot, size),
            Err(occupied) => self.reject(occupied),
        }
    }
}

/// The sequential lockstep loop, dispatched on the configured backing.
pub(crate) fn run_batch_sequential<A: NodeAlgorithm>(
    graph: &lma_graph::WeightedGraph,
    config: RunConfig,
    fleets: Vec<Vec<A>>,
) -> LaneResults<A::Output> {
    match config.backing {
        Backing::Inline => {
            run_batch_sequential_on::<MessagePlane<A::Msg>, A>(graph, config, fleets)
        }
        Backing::Arena => run_batch_sequential_on::<ArenaPlane<A::Msg>, A>(graph, config, fleets),
        Backing::Hybrid => run_batch_sequential_on::<HybridPlane<A::Msg>, A>(graph, config, fleets),
    }
}

fn run_batch_sequential_on<S: PlaneStore<A::Msg>, A: NodeAlgorithm>(
    graph: &lma_graph::WeightedGraph,
    config: RunConfig,
    fleets: Vec<Vec<A>>,
) -> LaneResults<A::Output> {
    let lanes = fleets.len();
    let mut set = pool::checkout_batch::<A::Msg, S>(graph.csr().slot_count(), lanes);
    let results = batch_loop(graph, config, &mut set, fleets);
    pool::give_back_batch(set);
    results
}

/// The core lockstep loop.  Structured exactly like the single-run
/// `sequential_loop`, with every piece of per-run state turned into a
/// per-lane vector and the done-check, round-limit check and pending-error
/// commit applied lane by lane in the same order the single-run loop
/// applies them — that ordering is what makes `batched(W)` bit-identical
/// to `W` sequential runs.
#[allow(clippy::too_many_lines)]
fn batch_loop<S: PlaneStore<A::Msg>, A: NodeAlgorithm>(
    graph: &lma_graph::WeightedGraph,
    config: RunConfig,
    set: &mut pool::BatchSet<A::Msg, S>,
    mut fleets: Vec<Vec<A>>,
) -> LaneResults<A::Output> {
    let lanes = fleets.len();
    let n = graph.node_count();
    for fleet in &fleets {
        assert_eq!(fleet.len(), n, "one program per node per lane is required");
    }
    let views = Runtime::with_config(graph, config).local_views();
    let budget = config.model.budget();
    let csr = graph.csr();
    let offsets = csr.offsets();
    let mirror = csr.mirror_table();
    let incident = csr.incident_flat();

    let pool::BatchSet {
        cur,
        next,
        inbox,
        spare,
    } = set;
    let mut pending: Vec<PendingRound> = (0..lanes).map(|_| PendingRound::default()).collect();
    let mut events: Vec<Vec<TraceEvent>> = (0..lanes).map(|_| Vec::new()).collect();
    let mut stats: Vec<RunStats> = (0..lanes).map(|_| RunStats::default()).collect();
    let mut done_counts = vec![0usize; lanes];
    let mut results: Vec<Option<Result<RunResult<A::Output>, RunError>>> =
        (0..lanes).map(|_| None).collect();
    // The per-lane done-bitmask: lanes still running.  Finished lanes drop
    // out without stalling the batch.
    let mut active = LaneWords::new(lanes);
    active.fill();
    // Reused lane-index scratch: the finalization / round-limit / commit
    // passes mutate `active` while iterating, so they snapshot the live
    // lanes here instead of collecting a fresh Vec every round.
    let mut lane_scratch: Vec<usize> = Vec::with_capacity(lanes);

    // Sparse frontier state (see `crate::frontier`): lane-striped cur/next
    // mark sets plus the eager template that re-seeds `next` each round —
    // the batch analogue of the single-run executor's `NodeSet` pair.
    // Compiled away unless the program opts in via `MESSAGE_DRIVEN`.
    let mut cur_front = BatchFrontier::default();
    let mut next_front = BatchFrontier::default();
    let mut eager_front = BatchFrontier::default();
    let mut lane_active: Vec<u64> = Vec::new();
    if A::MESSAGE_DRIVEN {
        eager_front = BatchFrontier::new(n, lanes);
        for (l, fleet) in fleets.iter().enumerate() {
            for (u, program) in fleet.iter().enumerate() {
                if !program.message_driven() {
                    eager_front.mark(u, l);
                }
            }
        }
        cur_front = eager_front.clone();
        next_front = BatchFrontier::new(n, lanes);
        lane_active = vec![0; lanes];
    }

    // Initialization: every lane's round-0 local computation, node-major so
    // the views are walked once.
    for u in 0..n {
        for l in 0..lanes {
            let mut scatter = BatchScatter {
                node: u,
                base: offsets[u],
                degree: offsets[u + 1] - offsets[u],
                delivery_round: 1,
                plane: &mut *cur,
                plane_offset: 0,
                lane: l,
                spare: &mut *spare,
                pending: &mut pending[l],
                incident,
                budget,
                enforce_congest: config.enforce_congest,
                trace: config.trace,
                frontier: A::MESSAGE_DRIVEN.then_some(&mut cur_front),
            };
            fleets[l][u].init_into(&views[u], &mut MsgSink::new(&mut scatter));
            if fleets[l][u].is_done() {
                done_counts[l] += 1;
            }
        }
    }

    let mut round = 0usize;
    loop {
        // Lane finalization first — the batch analogue of the single-run
        // `while done_count < n` condition: a fully done lane completes
        // *before* the round-limit check, and its final-step traffic is
        // dropped, never counted (drained out of the shared plane so the
        // round-reset invariants hold for the lanes that keep going).
        lane_scratch.clear();
        lane_scratch.extend(active.ones());
        for &l in &lane_scratch {
            if done_counts[l] >= n {
                cur.drain_lane(l, spare);
                pending[l].reset();
                let outputs = fleets[l].iter().map(NodeAlgorithm::output).collect();
                let mut lane_events = std::mem::take(&mut events[l]);
                results[l] = Some(Ok(RunResult {
                    outputs,
                    stats: std::mem::take(&mut stats[l]),
                    trace: config.trace.then(|| {
                        lane_events.sort_by_key(|e| (e.round, e.from, e.to));
                        lane_events
                    }),
                }));
                active.clear(l);
            }
        }
        if !active.any() {
            break;
        }
        if round >= config.max_rounds {
            lane_scratch.clear();
            lane_scratch.extend(active.ones());
            for &l in &lane_scratch {
                results[l] = Some(Err(RunError::RoundLimitExceeded {
                    limit: config.max_rounds,
                }));
                // Pending errors are shadowed by the round limit, exactly as
                // in the single-run loop.  The planes are left as-is; the
                // pool's checkout `prepare` clears them for the next run.
            }
            break;
        }
        round += 1;

        // Commit each active lane's scattered traffic: errors first (in
        // scatter order within the lane), then stats and trace.
        lane_scratch.clear();
        lane_scratch.extend(active.ones());
        for &l in &lane_scratch {
            let p = &mut pending[l];
            let failure = match p.error {
                Some(PendingError::Malformed { node, port }) => {
                    Some(RunError::MalformedOutbox { node, port })
                }
                Some(PendingError::Congest { bits }) => Some(RunError::CongestViolation {
                    round,
                    bits,
                    budget: budget.expect("congest error implies a budget"),
                }),
                None => None,
            };
            if let Some(error) = failure {
                results[l] = Some(Err(error));
                p.reset();
                cur.drain_lane(l, spare);
                active.clear(l);
                continue;
            }
            stats[l].record_round(p.messages, p.bits, p.max_bits, p.violations);
            if config.trace {
                events[l].append(&mut p.events);
            }
            p.reset();
        }
        if !active.any() {
            break;
        }

        // The frontier decision is global for the batch (on the any-lane
        // mask, so one traversal serves everyone) but the recorded per-lane
        // active counts are lane-exact — identical to what each lane's solo
        // run records.  `next` is re-seeded from the eager template so
        // eager-instance lanes never leave the frontier.
        let use_sparse = if A::MESSAGE_DRIVEN {
            let use_sparse = config.frontier.use_sparse(cur_front.any().count(), n);
            cur_front.lane_counts(&mut lane_active);
            for l in active.ones() {
                stats[l].record_frontier(lane_active[l], use_sparse);
            }
            next_front.copy_from(&eager_front);
            use_sparse
        } else {
            false
        };

        // Deliver and step: one CSR walk for the whole batch.  Per node,
        // every active lane gathers (unconditionally — done nodes of live
        // lanes still drain their stripe) and steps back to back, so the
        // offsets/mirror/incident cache lines are touched once per node for
        // all W runs.  The sparse branch walks only any-lane-active nodes:
        // by the marking invariant a skipped node's slots are empty in every
        // lane, so skipping its gather is a pure no-op.
        macro_rules! gather_step {
            ($v:expr) => {{
                let v = $v;
                let base = offsets[v];
                let degree = offsets[v + 1] - base;
                for l in active.ones() {
                    if S::RECYCLES {
                        spare.extend(inbox.drain(..).map(|(_, m)| m));
                    } else {
                        inbox.clear();
                    }
                    for (p, &sender_slot) in mirror[base..base + degree].iter().enumerate() {
                        if let Some(msg) = cur.fetch(sender_slot, l, spare) {
                            inbox.push((p, msg));
                        }
                    }
                    if fleets[l][v].is_done() {
                        continue;
                    }
                    let mut scatter = BatchScatter {
                        node: v,
                        base,
                        degree,
                        delivery_round: round + 1,
                        plane: &mut *next,
                        plane_offset: 0,
                        lane: l,
                        spare: &mut *spare,
                        pending: &mut pending[l],
                        incident,
                        budget,
                        enforce_congest: config.enforce_congest,
                        trace: config.trace,
                        frontier: A::MESSAGE_DRIVEN.then_some(&mut next_front),
                    };
                    fleets[l][v].round_into(
                        &views[v],
                        round,
                        inbox,
                        &mut MsgSink::new(&mut scatter),
                    );
                    if fleets[l][v].is_done() {
                        done_counts[l] += 1;
                    }
                }
            }};
        }
        if use_sparse {
            for v in cur_front.any().ones() {
                gather_step!(v);
            }
        } else {
            for v in 0..n {
                gather_step!(v);
            }
        }

        std::mem::swap(cur, next);
        next.reset_round();
        if A::MESSAGE_DRIVEN {
            std::mem::swap(&mut cur_front, &mut next_front);
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every lane was finalized"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{LocalView, Outbox};
    use lma_graph::generators::{gnp_connected, ring};
    use lma_graph::weights::WeightStrategy;
    use lma_graph::WeightedGraph;

    /// Flood the maximum identifier, finishing after `n` quiet rounds.
    struct MaxIdFlood {
        best: u64,
        quiet_for: usize,
        done: bool,
    }

    impl NodeAlgorithm for MaxIdFlood {
        type Msg = u64;
        type Output = u64;

        fn init(&mut self, view: &LocalView) -> Outbox<u64> {
            self.best = view.id;
            (0..view.degree()).map(|p| (p, self.best)).collect()
        }

        fn round(&mut self, view: &LocalView, _round: usize, inbox: &[(Port, u64)]) -> Outbox<u64> {
            let before = self.best;
            for (_, id) in inbox {
                self.best = self.best.max(*id);
            }
            if self.best == before {
                self.quiet_for += 1;
            } else {
                self.quiet_for = 0;
            }
            if self.quiet_for >= view.n {
                self.done = true;
                return Vec::new();
            }
            (0..view.degree()).map(|p| (p, self.best)).collect()
        }

        fn is_done(&self) -> bool {
            self.done
        }

        fn output(&self) -> Option<u64> {
            self.done.then_some(self.best)
        }
    }

    fn flood_fleet(n: usize) -> Vec<MaxIdFlood> {
        (0..n)
            .map(|_| MaxIdFlood {
                best: 0,
                quiet_for: 0,
                done: false,
            })
            .collect()
    }

    fn assert_lanes_match_sequential(graph: &WeightedGraph, sim: Sim<'_>, lanes: usize) {
        let n = graph.node_count();
        let batched = sim
            .batch(lanes)
            .run((0..lanes).map(|_| flood_fleet(n)).collect())
            .unwrap();
        let solo = sim.run(flood_fleet(n)).unwrap();
        for (l, lane) in batched.iter().enumerate() {
            let lane = lane.as_ref().expect("flood lanes succeed");
            assert_eq!(lane.outputs, solo.outputs, "lane {l} outputs");
            assert_eq!(lane.stats, solo.stats, "lane {l} stats");
            assert_eq!(lane.trace, solo.trace, "lane {l} trace");
        }
    }

    #[test]
    fn batched_flood_is_bit_identical_to_sequential_per_lane() {
        let g = ring(13, WeightStrategy::DistinctRandom { seed: 5 });
        let sim = Sim::on(&g).trace(true);
        for lanes in [1usize, 2, 8] {
            assert_lanes_match_sequential(&g, sim, lanes);
        }
    }

    #[test]
    fn batched_arena_backing_matches_too() {
        let g = gnp_connected(20, 0.2, 3, WeightStrategy::DistinctRandom { seed: 8 });
        let sim = Sim::on(&g).trace(true).backing(Backing::Arena);
        assert_lanes_match_sequential(&g, sim, 3);
    }

    #[test]
    fn sharded_batch_matches_sequential_lane_for_lane() {
        let g = gnp_connected(24, 0.15, 11, WeightStrategy::DistinctRandom { seed: 4 });
        for backing in Backing::ALL {
            let sim = Sim::on(&g).trace(true).backing(backing).threads(3);
            assert_lanes_match_sequential(&g, sim, 5);
        }
    }

    /// A flood program that, when rogue, also sends through a port it does
    /// not have — the per-lane malformed-outbox path.
    struct MaybeRogue {
        flood: MaxIdFlood,
        rogue: bool,
    }

    impl NodeAlgorithm for MaybeRogue {
        type Msg = u64;
        type Output = u64;

        fn init(&mut self, view: &LocalView) -> Outbox<u64> {
            let mut out = self.flood.init(view);
            if self.rogue {
                out.push((view.degree(), 99));
            }
            out
        }

        fn round(&mut self, view: &LocalView, round: usize, inbox: &[(Port, u64)]) -> Outbox<u64> {
            self.flood.round(view, round, inbox)
        }

        fn is_done(&self) -> bool {
            self.flood.is_done()
        }

        fn output(&self) -> Option<u64> {
            self.flood.output()
        }
    }

    fn rogue_fleet(n: usize, rogue: bool) -> Vec<MaybeRogue> {
        flood_fleet(n)
            .into_iter()
            .map(|flood| MaybeRogue { flood, rogue })
            .collect()
    }

    #[test]
    fn failing_lane_reports_its_own_error_and_the_others_complete() {
        let g = ring(10, WeightStrategy::DistinctRandom { seed: 2 });
        for threads in [0usize, 3] {
            let sim = Sim::on(&g).threads(threads);
            let good = sim.run(rogue_fleet(10, false)).unwrap();
            let bad = sim.run(rogue_fleet(10, true)).unwrap_err();
            let results = sim
                .batch(3)
                .run(vec![
                    rogue_fleet(10, false),
                    rogue_fleet(10, true),
                    rogue_fleet(10, false),
                ])
                .unwrap();
            assert_eq!(
                results[1].as_ref().unwrap_err(),
                &bad,
                "threads={threads}: the rogue lane fails exactly like its solo run"
            );
            for l in [0usize, 2] {
                let lane = results[l].as_ref().unwrap();
                assert_eq!(lane.outputs, good.outputs, "threads={threads} lane {l}");
                assert_eq!(lane.stats, good.stats, "threads={threads} lane {l}");
            }
        }
    }

    #[test]
    fn zero_lanes_is_an_empty_batch() {
        let g = ring(4, WeightStrategy::Unit);
        let results = Sim::on(&g).batch(0).run(Vec::<Vec<MaxIdFlood>>::new());
        assert!(results.unwrap().is_empty());
    }

    #[test]
    fn wrong_fleet_count_is_a_shape_error() {
        let g = ring(4, WeightStrategy::Unit);
        let err = Sim::on(&g).batch(3).run(vec![flood_fleet(4)]).unwrap_err();
        assert_eq!(
            err,
            BatchShapeError {
                expected: 3,
                got: 1
            }
        );
        assert!(err.to_string().contains("3 lanes"));
    }

    #[test]
    fn round_limit_fails_every_unfinished_lane() {
        let g = ring(9, WeightStrategy::Unit);
        let sim = Sim::on(&g).round_limit(2);
        let results = sim
            .batch(2)
            .run(vec![flood_fleet(9), flood_fleet(9)])
            .unwrap();
        for lane in results {
            assert_eq!(lane.unwrap_err(), RunError::RoundLimitExceeded { limit: 2 });
        }
    }
}
