//! Offline, in-tree stand-in for the crates.io `proptest` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! subset of the proptest API the test suites use is reimplemented here:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * range strategies (`lo..hi` on `u64` / `usize` / `u32` / `i64`),
//!   tuple strategies, [`strategy::any`]`::<bool>()` and
//!   [`collection::vec`].
//!
//! Differences from real proptest, by design: inputs are drawn from a
//! deterministic per-test PRNG (seeded from the test's name, so runs are
//! exactly reproducible), there is **no shrinking**, and a failing case
//! reports the generated inputs verbatim instead of a minimized
//! counterexample.  Swap this crate for the real `proptest` in the
//! workspace manifest once the build environment has network access.

#![forbid(unsafe_code)]

/// Per-run configuration: how many random cases each property executes.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; these suites run many properties on
        // graph instances, so keep the default modest and deterministic.
        Self { cases: 64 }
    }
}

/// The case count a property actually runs: the `PROPTEST_CASES`
/// environment variable when set and parseable, else `configured`.
///
/// Unlike real proptest (where the env var only changes the *default*),
/// the override beats explicit `with_cases` headers too — the variable
/// exists so Miri and sanitizer CI jobs can clamp every suite at once,
/// and a header that silently escaped the clamp would defeat that.
#[must_use]
pub fn resolved_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.trim().parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// The deterministic RNG driving input generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name, so each property gets an independent
    /// but reproducible stream.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod strategy {
    //! Input-generation strategies (the value-producing half of proptest's
    //! `Strategy`; there is no shrinking).

    use super::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of test-case inputs.
    pub trait Strategy {
        /// The produced value type.
        type Value: Debug;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start);
                    self.start.wrapping_add((rng.next_u64() % span as u64) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u64, usize, u32, i64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// Types with a canonical full-domain strategy (proptest's `Arbitrary`).
    pub trait Arbitrary: Debug + Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    /// The strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T` (proptest's `any::<T>()`).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// The strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = Range::generate(&self.len, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length is drawn from `len`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` caller expects in scope.

    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, TestRng,
    };
}

/// Asserts a condition inside a property (no shrinking: maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }` item
/// becomes a `#[test]` that runs `body` for `cases` generated inputs.  A
/// failing case re-raises the original panic after printing the generated
/// inputs (there is no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::resolved_cases(config.cases);
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                let values = ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                let rendered = format!("{:?}", values);
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                    let ($($arg,)+) = values;
                    $body
                }));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs ({}) = {}",
                        stringify!($name),
                        case + 1,
                        cases,
                        stringify!($($arg),+),
                        rendered
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn resolved_cases_falls_back_to_configured() {
        // PROPTEST_CASES is not set in the unit-test environment.
        assert_eq!(crate::resolved_cases(7), 7);
    }

    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(0usize..1), &mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..100 {
            let v = Strategy::generate(&collection::vec(any::<bool>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0u64..100, pair in (0usize..4, 0usize..4)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }

        #[test]
        fn macro_single_argument(bits in collection::vec(any::<bool>(), 0..10)) {
            prop_assert!(bits.len() < 10);
        }
    }
}
