//! Offline, in-tree stand-in for the crates.io `criterion` bench harness.
//!
//! The container this workspace builds in has no registry access, so the
//! subset of the criterion API the benches use is reimplemented here on top
//! of `std::time::Instant`:
//!
//! * [`Criterion`] with `sample_size`, `warm_up_time`, `measurement_time`
//!   and `benchmark_group`;
//! * [`BenchmarkGroup`] with `bench_function`, `bench_with_input` and
//!   `finish`;
//! * [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//!   [`criterion_group!`] / [`criterion_main!`] macros (both the plain and
//!   the `name = …; config = …; targets = …` forms).
//!
//! Timing model: each benchmark is warmed up for `warm_up_time`, then up to
//! `sample_size` samples are collected (each sample times one closure call)
//! within a `measurement_time` budget.  The median, minimum and maximum are
//! printed in a criterion-like one-line format.  There is no statistical
//! analysis and no comparison to previous runs, but every result is also
//! recorded in a process-global registry that [`criterion_main!`] writes out
//! as `BENCH_<bench-name>.json` at the workspace root when the bench binary
//! exits — the machine-readable perf trajectory the repo commits per PR.
//!
//! Two extensions beyond the crates.io API subset:
//!
//! * **smoke mode** — running a bench binary with `-- --smoke` clamps every
//!   benchmark to 2 samples, a 5 ms warm-up and a 100 ms budget, and
//!   [`is_smoke`] lets bench files shrink their inputs; CI uses this to
//!   catch executor regressions without paying full bench time (the smoke
//!   run skips the JSON export so trajectory files always hold full runs);
//! * **throughput** — [`BenchmarkGroup::throughput`] with
//!   [`Throughput::Elements`] records a per-element time (e.g. ns/round)
//!   next to the absolute sample times in the JSON;
//! * **trajectory honesty** — the JSON export records `host_cpus`, and
//!   [`finalize`] refuses to overwrite a committed `BENCH_*.json` that was
//!   recorded on a machine with *more* cores than the current host (a
//!   laptop re-run would silently rewrite multi-core numbers with
//!   single-core ones).  `-- --force` overrides the refusal when the
//!   downgrade is intentional.
//!
//! Swap this crate for the real `criterion` in the workspace manifest once
//! the build environment has network access.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

static SMOKE: AtomicBool = AtomicBool::new(false);
static FORCE: AtomicBool = AtomicBool::new(false);

/// One recorded benchmark result, queued for the JSON trajectory.
struct RecordedResult {
    scenario: String,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
    elements: Option<u64>,
}

fn registry() -> &'static Mutex<Vec<RecordedResult>> {
    static REGISTRY: OnceLock<Mutex<Vec<RecordedResult>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Benchmarks that failed: panicked inside their closure (e.g. a scenario
/// cell whose setup or run `unwrap`s an error) or produced no samples.
/// [`finalize`] turns a non-empty list into a nonzero exit, so a broken
/// cell can no longer scroll past and leave the smoke job green.
fn failures() -> &'static Mutex<Vec<String>> {
    static FAILURES: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    FAILURES.get_or_init(|| Mutex::new(Vec::new()))
}

fn record_failure(scenario: &str, reason: &str) {
    eprintln!("FAILED {scenario}: {reason}");
    failures()
        .lock()
        .unwrap()
        .push(format!("{scenario}: {reason}"));
}

fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// True when the bench binary was invoked with `-- --smoke`.
#[must_use]
pub fn is_smoke() -> bool {
    SMOKE.load(Ordering::Relaxed)
}

/// True when the bench binary was invoked with `-- --force` (overrides the
/// fewer-cores refusal to overwrite a committed trajectory).
#[must_use]
pub fn is_force() -> bool {
    FORCE.load(Ordering::Relaxed)
}

/// Parses the bench binary's CLI (called by [`criterion_main!`] before any
/// group runs).  Only `--smoke` and `--force` are interpreted; everything
/// else cargo forwards (`--bench`, filters) is ignored, like the real
/// criterion would.
#[doc(hidden)]
pub fn init_from_args() {
    for arg in std::env::args() {
        match arg.as_str() {
            "--smoke" => SMOKE.store(true, Ordering::Relaxed),
            "--force" => FORCE.store(true, Ordering::Relaxed),
            _ => {}
        }
    }
}

/// Per-iteration work declared for a benchmark, à la criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per call (e.g.
    /// simulated rounds); the JSON trajectory reports time divided by it.
    Elements(u64),
}

/// Identifier of one benchmark inside a group: a function name plus an
/// optional parameter, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// `(median, min, max)` of the collected samples, filled by `iter`.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher<'_> {
    /// Times `routine`: warm-up, then up to `sample_size` timed calls within
    /// the measurement budget.  In smoke mode the configuration is clamped
    /// to 2 samples / 5 ms warm-up / 100 ms budget regardless of what the
    /// bench file configured.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let smoke_config;
        let config = if is_smoke() {
            smoke_config = Config {
                sample_size: self.config.sample_size.min(2),
                warm_up_time: self.config.warm_up_time.min(Duration::from_millis(5)),
                measurement_time: self.config.measurement_time.min(Duration::from_millis(100)),
            };
            &smoke_config
        } else {
            self.config
        };
        // Warm-up.
        let warm_deadline = Instant::now() + config.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        // Measurement.
        let mut samples: Vec<Duration> = Vec::with_capacity(config.sample_size);
        let budget = Instant::now() + config.measurement_time;
        for _ in 0..config.sample_size {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed());
            if Instant::now() >= budget && !samples.is_empty() {
                break;
            }
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        self.result = Some((median, samples[0], *samples.last().unwrap()));
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The top-level bench context (a small subset of criterion's).
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Overrides the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Overrides the measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: &self.config,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    config: &'a Config,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work of the following benchmarks in this
    /// group; the JSON trajectory then reports a per-element time.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark identified by `id`.  A panic inside the closure is
    /// caught, reported as a failed benchmark, and turned into a nonzero
    /// process exit by [`finalize`] — the remaining benchmarks still run, so
    /// one broken cell neither aborts the sweep nor lets it exit green.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher<'_>)>(&mut self, id: S, mut f: F) {
        let mut b = Bencher {
            config: self.config,
            result: None,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut b)));
        self.conclude(&id.to_string(), outcome, b.result);
    }

    /// Runs one benchmark that receives a shared input value (same failure
    /// handling as [`BenchmarkGroup::bench_function`]).
    pub fn bench_with_input<S: Display, I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            config: self.config,
            result: None,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut b, input)));
        self.conclude(&id.to_string(), outcome, b.result);
    }

    /// Routes a finished (or crashed) benchmark to reporting: panics and
    /// sample-less runs are recorded as failures, successes are reported.
    fn conclude(
        &self,
        id: &str,
        outcome: std::thread::Result<()>,
        result: Option<(Duration, Duration, Duration)>,
    ) {
        let scenario = format!("{}/{}", self.name, id);
        match outcome {
            Err(payload) => record_failure(&scenario, &panic_payload_message(payload.as_ref())),
            Ok(()) if result.is_none() => {
                record_failure(
                    &scenario,
                    "no samples collected (closure never called iter)",
                );
            }
            Ok(()) => self.report(id, result),
        }
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}

    fn report(&self, id: &str, result: Option<(Duration, Duration, Duration)>) {
        match result {
            Some((median, min, max)) => {
                println!(
                    "{}/{:<40} time: [{} {} {}]",
                    self.name,
                    id,
                    fmt_duration(min),
                    fmt_duration(median),
                    fmt_duration(max)
                );
                registry().lock().unwrap().push(RecordedResult {
                    scenario: format!("{}/{}", self.name, id),
                    median_ns: median.as_nanos(),
                    min_ns: min.as_nanos(),
                    max_ns: max.as_nanos(),
                    elements: self.throughput.map(|Throughput::Elements(e)| e),
                });
            }
            None => println!("{}/{:<40} time: [no samples]", self.name, id),
        }
    }
}

/// Writes the recorded results as `BENCH_<bench-name>.json` (called by
/// [`criterion_main!`] after every group ran).  Skipped in smoke mode so the
/// committed trajectory only ever holds full measurements.  The file lands
/// in `$BENCH_JSON_DIR` when set, else at the workspace root (the nearest
/// ancestor of the running crate's manifest directory holding a
/// `Cargo.lock`), else in the current directory.
#[doc(hidden)]
pub fn finalize() {
    // Failed benchmarks (panicking closures, sample-less cells) make the
    // process exit nonzero in *both* modes — the smoke CI job exists to
    // catch exactly these, and before this check a broken cell's output
    // could scroll past while the job stayed green.
    {
        let failures = failures().lock().unwrap();
        if !failures.is_empty() {
            eprintln!("\n{} benchmark(s) failed:", failures.len());
            for failure in failures.iter() {
                eprintln!("  {failure}");
            }
            std::process::exit(1);
        }
    }
    if is_smoke() {
        return;
    }
    let results = registry().lock().unwrap();
    if results.is_empty() {
        return;
    }
    let name = std::env::args()
        .next()
        .map(|argv0| bench_name_from_argv0(&argv0))
        .unwrap_or_else(|| "bench".to_string());
    let path = trajectory_path(&name);
    let host_cpus = host_cpus();
    if let Err(refusal) = guard_trajectory_overwrite(&path, host_cpus, is_force()) {
        eprintln!("\n{refusal}");
        std::process::exit(1);
    }
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"bench\": \"{}\",\n", escape(&name)));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let per_element = match r.elements {
            Some(e) if e > 0 => format!(
                ", \"elements\": {e}, \"per_element_ns\": {:.1}",
                r.median_ns as f64 / e as f64
            ),
            _ => String::new(),
        };
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}{}}}{}\n",
            escape(&r.scenario),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            per_element,
            sep
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote bench trajectory to {}", path.display()),
        Err(e) => eprintln!("\nfailed to write bench trajectory {}: {e}", path.display()),
    }
}

/// The core count trajectory files record as `host_cpus`.
#[must_use]
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get)
}

/// The canonical location of the `BENCH_<name>.json` trajectory: under
/// `$BENCH_JSON_DIR` when set, else at the workspace root (the nearest
/// ancestor of the running crate's manifest directory holding a
/// `Cargo.lock`), else the current directory.  Public so non-bench exporters
/// (`lma-serve`'s replay driver) write their trajectories to the same place
/// the committed ones live.
#[must_use]
pub fn trajectory_path(name: &str) -> std::path::PathBuf {
    output_dir().join(format!("BENCH_{name}.json"))
}

/// The honest-trajectory guard, reusable by every `BENCH_*.json` export
/// path: a committed trajectory recorded on a bigger machine must not be
/// silently replaced by numbers from a smaller one — the parallel cells
/// would regress for reasons that have nothing to do with the code.
/// `force` acknowledges the downgrade explicitly.
///
/// # Errors
/// The human-readable refusal when the committed file at `path` was
/// recorded on more cores than `host_cpus` and `force` is unset.  A missing
/// or malformed file never blocks a write.
pub fn guard_trajectory_overwrite(
    path: &std::path::Path,
    host_cpus: usize,
    force: bool,
) -> Result<(), String> {
    if let Some(committed) = std::fs::read_to_string(path)
        .ok()
        .and_then(|json| committed_host_cpus(&json))
    {
        if committed > host_cpus && !force {
            return Err(format!(
                "refusing to overwrite {}: it was recorded on {committed} cores, \
                 this host has {host_cpus}; rerun with `-- --force` to overwrite anyway",
                path.display()
            ));
        }
    }
    Ok(())
}

/// Extracts the `"host_cpus": N` field from a committed trajectory file.
/// Hand-rolled like the writer above (no serde in this shim); returns
/// `None` on any shape surprise so a malformed file never blocks a write.
fn committed_host_cpus(json: &str) -> Option<usize> {
    let rest = json.split_once("\"host_cpus\"")?.1;
    let digits = rest.trim_start_matches([':', ' ', '\t']);
    let end = digits
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    digits[..end].parse().ok()
}

/// `target/release/deps/bench_substrate-0f3a…` → `bench_substrate`.
fn bench_name_from_argv0(argv0: &str) -> String {
    let stem = std::path::Path::new(argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((name, suffix))
            if !name.is_empty() && suffix.chars().all(|c| c.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem.to_string(),
    }
}

fn output_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("BENCH_JSON_DIR") {
        return std::path::PathBuf::from(dir);
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let mut dir = std::path::PathBuf::from(manifest);
        loop {
            if dir.join("Cargo.lock").is_file() {
                return dir;
            }
            if !dir.pop() {
                break;
            }
        }
    }
    std::path::PathBuf::from(".")
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a duration in criterion's adaptive unit style.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a bench group: both the plain form
/// `criterion_group!(name, target_a, target_b)` and the configured form
/// `criterion_group! { name = n; config = expr; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`: parses the CLI (`--smoke`), invokes
/// each group in order, then writes the JSON bench trajectory.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args();
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        trivial(&mut c);
    }

    #[test]
    fn panicking_and_sample_less_benchmarks_are_recorded_as_failures() {
        let before = failures().lock().unwrap().len();
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("failing");
        group.bench_function("panics", |_b| panic!("planted failure"));
        group.bench_function("no_samples", |_b| {
            // Never calls iter: must be recorded, not silently reported.
        });
        group.bench_function("fine", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        let failures = failures().lock().unwrap();
        let new: Vec<&String> = failures.iter().skip(before).collect();
        assert_eq!(new.len(), 2, "exactly the two broken benches fail: {new:?}");
        assert!(new[0].contains("failing/panics") && new[0].contains("planted failure"));
        assert!(new[1].contains("failing/no_samples"));
    }

    #[test]
    fn committed_host_cpus_parses_the_written_shape() {
        let json = "{\n  \"bench\": \"b\",\n  \"host_cpus\": 96,\n  \"results\": [\n  ]\n}\n";
        assert_eq!(committed_host_cpus(json), Some(96));
        assert_eq!(committed_host_cpus("{}"), None);
        assert_eq!(committed_host_cpus("{\"host_cpus\": }"), None);
        assert_eq!(committed_host_cpus("{\"host_cpus\":4}"), Some(4));
    }

    #[test]
    fn overwrite_guard_refuses_core_downgrades_unless_forced() {
        let dir = std::env::temp_dir().join(format!("criterion-guard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_guard.json");
        std::fs::write(&path, "{\n  \"bench\": \"g\",\n  \"host_cpus\": 64,\n}\n").unwrap();
        // Fewer cores than committed: refused without force, allowed with.
        let refusal = guard_trajectory_overwrite(&path, 1, false).unwrap_err();
        assert!(
            refusal.contains("64 cores") && refusal.contains("--force"),
            "{refusal}"
        );
        assert!(guard_trajectory_overwrite(&path, 1, true).is_ok());
        // Equal or more cores: allowed.
        assert!(guard_trajectory_overwrite(&path, 64, false).is_ok());
        assert!(guard_trajectory_overwrite(&path, 128, false).is_ok());
        // Missing or malformed files never block.
        assert!(guard_trajectory_overwrite(&dir.join("missing.json"), 1, false).is_ok());
        std::fs::write(&path, "not json").unwrap();
        assert!(guard_trajectory_overwrite(&path, 1, false).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.000 s");
    }
}
