//! Offline, in-tree stand-in for the crates.io `criterion` bench harness.
//!
//! The container this workspace builds in has no registry access, so the
//! subset of the criterion API the benches use is reimplemented here on top
//! of `std::time::Instant`:
//!
//! * [`Criterion`] with `sample_size`, `warm_up_time`, `measurement_time`
//!   and `benchmark_group`;
//! * [`BenchmarkGroup`] with `bench_function`, `bench_with_input` and
//!   `finish`;
//! * [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//!   [`criterion_group!`] / [`criterion_main!`] macros (both the plain and
//!   the `name = …; config = …; targets = …` forms).
//!
//! Timing model: each benchmark is warmed up for `warm_up_time`, then up to
//! `sample_size` samples are collected (each sample times one closure call)
//! within a `measurement_time` budget.  The median, minimum and maximum are
//! printed in a criterion-like one-line format.  There is no statistical
//! analysis, no output directory, and no comparison to previous runs — the
//! numbers go to stdout and to the bench trajectory only.
//!
//! Swap this crate for the real `criterion` in the workspace manifest once
//! the build environment has network access.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark inside a group: a function name plus an
/// optional parameter, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// `(median, min, max)` of the collected samples, filled by `iter`.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher<'_> {
    /// Times `routine`: warm-up, then up to `sample_size` timed calls within
    /// the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        // Measurement.
        let mut samples: Vec<Duration> = Vec::with_capacity(self.config.sample_size);
        let budget = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed());
            if Instant::now() >= budget && !samples.is_empty() {
                break;
            }
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        self.result = Some((median, samples[0], *samples.last().unwrap()));
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The top-level bench context (a small subset of criterion's).
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Overrides the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Overrides the measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: &self.config,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    config: &'a Config,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark identified by `id`.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher<'_>)>(&mut self, id: S, mut f: F) {
        let mut b = Bencher {
            config: self.config,
            result: None,
        };
        f(&mut b);
        self.report(&id.to_string(), b.result);
    }

    /// Runs one benchmark that receives a shared input value.
    pub fn bench_with_input<S: Display, I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            config: self.config,
            result: None,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.result);
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}

    fn report(&self, id: &str, result: Option<(Duration, Duration, Duration)>) {
        match result {
            Some((median, min, max)) => println!(
                "{}/{:<40} time: [{} {} {}]",
                self.name,
                id,
                fmt_duration(min),
                fmt_duration(median),
                fmt_duration(max)
            ),
            None => println!("{}/{:<40} time: [no samples]", self.name, id),
        }
    }
}

/// Renders a duration in criterion's adaptive unit style.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a bench group: both the plain form
/// `criterion_group!(name, target_a, target_b)` and the configured form
/// `criterion_group! { name = n; config = expr; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, invoking each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        trivial(&mut c);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.000 s");
    }
}
