//! Property suite for the fleet-batching lane helpers (vendored proptest):
//!
//! 1. **pack round trip** — `to_bools ∘ from_bools = id` for every lane
//!    width (the sweep crosses the 64-bit word boundary several times), with
//!    exact popcount accounting and the tail invariant (no set bits at
//!    positions `>= lanes`) preserved by every operation including `fill`;
//! 2. **op-sequence model** — arbitrary `set`/`clear`/`fill`/`clear_all`
//!    sequences on a [`LaneWords`] agree with the obvious `Vec<bool>` model,
//!    so the word-packed fast paths can never drift from per-lane semantics;
//! 3. **lane isolation** — on every plane backend, a [`BatchPlaneStore`]
//!    delivers exactly what each `(slot, lane)` stored: writes in one lane
//!    are invisible to every other lane, duplicates surface in graph-slot
//!    space, and [`BatchPlaneStore::drain_lane`] empties only its lane;
//! 4. **mark consistency** — [`BitFleet`]'s packed mark vectors and its
//!    per-lane `reached` accessor are two views of the same bits.
//!
//! These properties are what let the batch executors share one plane across
//! `W` runs and still be bit-identical to `W` sequential runs: striping is
//! invisible exactly when packing is lossless and lanes never alias.

use lma_sim::{
    ArenaPlane, BatchPlaneStore, BitFleet, HybridPlane, LaneWords, MessagePlane, PlaneStore,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Pins the pack round trip and the tail invariant for one boolean vector.
fn pin_pack_roundtrip(bits: &[bool]) {
    let set = LaneWords::from_bools(bits);
    assert_eq!(set.lanes(), bits.len());
    assert_eq!(
        set.to_bools(),
        bits,
        "to_bools ∘ from_bools must be the identity"
    );
    let trues = bits.iter().filter(|&&b| b).count();
    assert_eq!(set.count(), trues);
    assert_eq!(set.any(), trues > 0);
    assert_eq!(set.words().len(), bits.len().div_ceil(64));
    let word_bits: usize = set.words().iter().map(|w| w.count_ones() as usize).sum();
    assert_eq!(word_bits, trues, "tail bits above `lanes` must stay clear");
    let expected_ones: Vec<usize> = bits
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i))
        .collect();
    assert_eq!(set.ones().collect::<Vec<_>>(), expected_ones);
}

/// Stores every write into a fresh `slots × lanes` plane next to a
/// `HashMap` model, then fetches the full grid: each `(slot, lane)` yields
/// exactly what *its* lane stored (first write wins, duplicates reported in
/// graph-slot space), and a second fetch yields nothing.  Ends with
/// `reset_round`, which on the arena asserts the plane was fully drained.
fn pin_lane_isolation<S: PlaneStore<u64>>(
    slots: usize,
    lanes: usize,
    writes: &[(usize, usize, u64)],
    drained_lane: Option<usize>,
) {
    let mut plane: BatchPlaneStore<u64, S> = BatchPlaneStore::new(slots, lanes);
    let mut spare = Vec::new();
    let mut model: HashMap<(usize, usize), u64> = HashMap::new();
    for &(slot_draw, lane_draw, value) in writes {
        let (slot, lane) = (slot_draw % slots, lane_draw % lanes);
        let outcome = plane.store(slot, lane, value, &mut spare);
        if let std::collections::hash_map::Entry::Vacant(e) = model.entry((slot, lane)) {
            outcome.expect("first write into a free slot must succeed");
            e.insert(value);
        } else {
            let occupied = outcome.expect_err("second write into an occupied slot must fail");
            assert_eq!(
                (occupied.slot, occupied.len),
                (slot, slots),
                "duplicates must be reported in graph-slot space"
            );
        }
    }
    if let Some(lane) = drained_lane {
        let lane = lane % lanes;
        plane.drain_lane(lane, &mut spare);
        model.retain(|&(_, l), _| l != lane);
    }
    for slot in 0..slots {
        for lane in 0..lanes {
            assert_eq!(
                plane.fetch(slot, lane, &mut spare),
                model.get(&(slot, lane)).copied(),
                "({slot}, {lane}) must hold exactly what its lane stored"
            );
            assert_eq!(
                plane.fetch(slot, lane, &mut spare),
                None,
                "a message is delivered once"
            );
        }
    }
    plane.reset_round();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lane_words_pack_unpack_is_identity(
        bits in collection::vec(any::<bool>(), 0..200),
    ) {
        pin_pack_roundtrip(&bits);
    }

    #[test]
    fn lane_words_fill_covers_every_width(width in 0usize..200) {
        // `fill` is the one op that writes whole words; the tail invariant
        // must hold at every width, not just the drawn patterns above.
        let mut set = LaneWords::new(width);
        set.fill();
        pin_pack_roundtrip(&set.to_bools());
        prop_assert_eq!(set.count(), width);
    }

    #[test]
    fn lane_words_op_sequences_match_the_bool_model(
        lanes in 1usize..150,
        ops in collection::vec((0usize..1 << 16, 0u64..5), 0..80),
    ) {
        let mut set = LaneWords::new(lanes);
        let mut model = vec![false; lanes];
        for &(lane_draw, op) in &ops {
            let lane = lane_draw % lanes;
            match op {
                0 => { set.set(lane); model[lane] = true; }
                1 => { set.clear(lane); model[lane] = false; }
                2 => prop_assert_eq!(set.get(lane), model[lane]),
                3 => { set.fill(); model.iter_mut().for_each(|b| *b = true); }
                _ => { set.clear_all(); model.iter_mut().for_each(|b| *b = false); }
            }
            prop_assert_eq!(set.count(), model.iter().filter(|&&b| b).count());
        }
        prop_assert_eq!(set.to_bools(), model);
    }

    #[test]
    fn or_assign_is_the_per_lane_union(
        pairs in collection::vec((any::<bool>(), any::<bool>()), 0..150),
    ) {
        let left: Vec<bool> = pairs.iter().map(|&(a, _)| a).collect();
        let right: Vec<bool> = pairs.iter().map(|&(_, b)| b).collect();
        let mut set = LaneWords::from_bools(&left);
        set.or_assign(&LaneWords::from_bools(&right));
        let expected: Vec<bool> = left.iter().zip(&right).map(|(&a, &b)| a || b).collect();
        prop_assert_eq!(set.to_bools(), expected);
        pin_pack_roundtrip(&set.to_bools());
    }

    #[test]
    fn batch_planes_isolate_lanes_on_all_backends(
        slots in 1usize..12,
        lanes in 1usize..10,
        writes in collection::vec(((0usize..1 << 16, 0usize..1 << 16), any::<u64>()), 0..48),
        drain in (any::<bool>(), 0usize..1 << 16),
    ) {
        let writes: Vec<(usize, usize, u64)> =
            writes.iter().map(|&((s, l), v)| (s, l, v)).collect();
        let drain = drain.0.then_some(drain.1);
        pin_lane_isolation::<MessagePlane<u64>>(slots, lanes, &writes, drain);
        pin_lane_isolation::<ArenaPlane<u64>>(slots, lanes, &writes, drain);
        pin_lane_isolation::<HybridPlane<u64>>(slots, lanes, &writes, drain);
    }

    #[test]
    fn bit_fleet_marks_and_reached_are_the_same_bits(
        n in 2usize..24,
        lanes in 1usize..70,
        seeds in collection::vec((0usize..1 << 16, 0usize..1 << 16), 0..32),
        rounds in 0usize..4,
    ) {
        let g = lma_graph::generators::ring(n, lma_graph::weights::WeightStrategy::Unit);
        let mut fleet = BitFleet::new(n, lanes);
        prop_assert_eq!(fleet.lanes(), lanes);
        for &(node_draw, lane_draw) in &seeds {
            fleet.seed(node_draw % n, lane_draw % lanes);
        }
        fleet.run(&g, rounds);
        for v in 0..n {
            let marks = fleet.marks(v);
            let reached: Vec<bool> = (0..lanes).map(|l| fleet.reached(v, l)).collect();
            prop_assert_eq!(marks.to_bools(), reached, "node {}", v);
        }
    }
}
