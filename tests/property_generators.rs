//! Property tests for the scenario-registry graph generators (vendored
//! proptest).
//!
//! The golden-digest guard assumes three things of every generator it
//! sweeps: **determinism per seed** (otherwise digests are not reproducible
//! at all), **connectivity where promised** (every registered workload
//! needs a connected instance), and the family's **structural invariants**
//! (node/edge counts and degree bounds — drift here would silently change
//! every digest built on the family).  The two families added with the
//! registry (Barabási–Albert preferential attachment, Watts–Strogatz small
//! world) are pinned over randomized parameter ranges; [`Family`]
//! instantiation is pinned as a whole because it is the registry's entry
//! point.

use lma_graph::generators::{barabasi_albert, watts_strogatz, Family};
use lma_graph::validate::check_instance;
use lma_graph::weights::WeightStrategy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn barabasi_albert_holds_its_invariants(
        n in 6usize..150,
        attach in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let g = barabasi_albert(n, attach, seed, WeightStrategy::DistinctRandom { seed });
        check_instance(&g).unwrap_or_else(|e| panic!("invalid instance: {e}"));
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.node_count(), n);
        // The seed star contributes `attach` edges, every later node exactly
        // `attach` more (distinct targets, so nothing collapses).
        prop_assert_eq!(g.edge_count(), attach + (n - attach - 1) * attach);
        // Degree bounds: every node has an edge; every post-seed node
        // attaches to `attach` distinct targets.
        prop_assert!(g.nodes().all(|u| g.degree(u) >= 1));
        prop_assert!(g.nodes().skip(attach + 1).all(|u| g.degree(u) >= attach));

        // Determinism: the same seed reproduces the instance bit-for-bit, a
        // different seed must not (the registry's digest-vs-seed axiom).
        let same = barabasi_albert(n, attach, seed, WeightStrategy::DistinctRandom { seed });
        prop_assert_eq!(&g, &same);
        let other = barabasi_albert(n, attach, seed + 1, WeightStrategy::DistinctRandom { seed });
        prop_assert_ne!(&g, &other);
    }

    #[test]
    fn watts_strogatz_holds_its_invariants(
        n in 8usize..150,
        k_raw in 1usize..4,
        beta_milli in 0usize..1_001,
        seed in 0u64..1_000,
    ) {
        // A simple ring lattice needs 2k < n.
        let k = k_raw.min((n - 1) / 2);
        let beta = beta_milli as f64 / 1_000.0;
        let g = watts_strogatz(n, k, beta, seed, WeightStrategy::DistinctRandom { seed });
        check_instance(&g).unwrap_or_else(|e| panic!("invalid instance: {e}"));
        // Connected at every beta: the offset-1 ring is never rewired.
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.node_count(), n);
        // Rewiring never adds edges beyond the lattice count and only
        // duplicate collisions can remove long-range edges — never the ring.
        prop_assert!(g.edge_count() <= n * k);
        prop_assert!(g.edge_count() >= n);
        // Every node keeps its two ring edges.
        prop_assert!(g.nodes().all(|u| g.degree(u) >= 2));

        let same = watts_strogatz(n, k, beta, seed, WeightStrategy::DistinctRandom { seed });
        prop_assert_eq!(&g, &same);
    }

    #[test]
    fn every_family_instantiates_deterministically_and_connected(
        n in 4usize..64,
        seed in 0u64..500,
    ) {
        for family in Family::ALL {
            let weights = WeightStrategy::DistinctRandom { seed };
            let g = family.instantiate(n, weights, seed);
            check_instance(&g)
                .unwrap_or_else(|e| panic!("{} n={n} invalid: {e}", family.name()));
            prop_assert!(g.is_connected(), "{} must be connected", family.name());
            prop_assert!(g.node_count() >= 2);
            let same = family.instantiate(n, weights, seed);
            prop_assert_eq!(&g, &same, "{} must be deterministic", family.name());
        }
    }
}
