// lint: allow-file(unsafe-code) — the counting GlobalAlloc this test exists to install; audited here, forbidden everywhere else
//! Allocation oracle for the arena-backed message plane: a **steady-state
//! gossip round must allocate nothing**, even though every message carries a
//! variable-size `Vec` payload.
//!
//! Method: this test binary installs a global *counting* allocator (the
//! whole file is test-only code, the satellite form of "a counting allocator
//! behind `#[cfg(test)]`") and runs the same `Knowledge`-gossip program for
//! two different round counts, everything else identical and pool-warmed.
//! The gossip program is the shared `FixedGossip` fixture of
//! `lma_baselines::flood_collect` (also driven by the `gossip` bench
//! group), whose payload is built at construction time.
//! The per-run fixed costs (local views, program construction, outputs)
//! cancel in the difference, so
//!
//! > `allocs(run of 64 rounds) - allocs(run of 40 rounds) = 24 × (per-round
//! > allocations)`
//!
//! and the arena backing must make that difference **exactly zero**.  The
//! two round counts are chosen inside one power-of-two bracket (33..=64) so
//! the `RunStats::per_round_max_bits` vector reaches the same doubled
//! capacity in both runs.  As a control, the inline backing — which clones
//! the facts vector per port per round — must show a strictly positive
//! difference, so the test cannot silently pass by measuring nothing.
//!
//! The hybrid backing is pinned in **both** of its regimes: the
//! `Knowledge`-flood gossip above (every encoding spills to the arena) and
//! a small-`u64`-message beacon (every encoding stays in the 16-byte cell,
//! never touching the arena) must each show a zero per-round difference.

use lma_baselines::flood_collect::FixedGossip;
use lma_graph::generators::ring;
use lma_graph::weights::WeightStrategy;
use lma_graph::Port;
use lma_sim::{collect_outbox, Backing, LocalView, MsgSink, NodeAlgorithm, Outbox, Runtime, Sim};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation served to this test binary.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's; forwarded to `System` verbatim.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the caller's; forwarded to `System` verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's; forwarded to `System` verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const FACTS: usize = 48;
/// Both round counts live in the 33..=64 capacity bracket of a doubling
/// `Vec`, so `RunStats::per_round_max_bits` grows identically in both runs.
const ROUNDS_SHORT: usize = 40;
const ROUNDS_LONG: usize = 64;

fn gossip_allocations(g: &lma_graph::WeightedGraph, backing: Backing, rounds: usize) -> u64 {
    let sim = Sim::on(g).backing(backing);
    let programs: Vec<FixedGossip> = g
        .nodes()
        .map(|u| FixedGossip::new(u as u64, FACTS, rounds))
        .collect();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = sim.run(programs).unwrap();
    assert_eq!(result.stats.rounds, rounds);
    assert!(result.outputs.iter().all(Option::is_some));
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Allocation count of one `f()` call.
fn allocations_of(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// The small-message regime probe: every round each node broadcasts its
/// `u64` id (a couple of LEB128 bytes — always inside a hybrid cell) for a
/// fixed number of rounds.  The sink forms are the primary implementation
/// so the program itself allocates nothing per round.
struct Beacon {
    id: u64,
    heard: u64,
    rounds_left: usize,
}

impl NodeAlgorithm for Beacon {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, view: &LocalView) -> Outbox<u64> {
        collect_outbox(|out| self.init_into(view, out))
    }

    fn round(&mut self, view: &LocalView, round: usize, inbox: &[(Port, u64)]) -> Outbox<u64> {
        collect_outbox(|out| self.round_into(view, round, inbox, out))
    }

    fn init_into(&mut self, view: &LocalView, out: &mut MsgSink<'_, u64>) {
        for port in 0..view.degree() {
            out.send(port, self.id);
        }
    }

    fn round_into(
        &mut self,
        view: &LocalView,
        _round: usize,
        inbox: &[(Port, u64)],
        out: &mut MsgSink<'_, u64>,
    ) {
        for &(_, id) in inbox {
            self.heard = self.heard.wrapping_add(id);
        }
        self.rounds_left -= 1;
        if self.rounds_left == 0 {
            return;
        }
        for port in 0..view.degree() {
            out.send(port, self.id);
        }
    }

    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }

    fn output(&self) -> Option<u64> {
        (self.rounds_left == 0).then_some(self.heard)
    }
}

fn beacon_allocations(g: &lma_graph::WeightedGraph, backing: Backing, rounds: usize) -> u64 {
    let sim = Sim::on(g).backing(backing);
    let programs: Vec<Beacon> = g
        .nodes()
        .map(|u| Beacon {
            id: u as u64,
            heard: 0,
            rounds_left: rounds,
        })
        .collect();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = sim.run(programs).unwrap();
    assert_eq!(result.stats.rounds, rounds);
    assert!(result.outputs.iter().all(Option::is_some));
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

const LANES: usize = 3;

fn batch_gossip_allocations(g: &lma_graph::WeightedGraph, backing: Backing, rounds: usize) -> u64 {
    let sim = Sim::on(g).backing(backing).batch(LANES);
    let fleets: Vec<Vec<FixedGossip>> = (0..LANES)
        .map(|l| {
            g.nodes()
                .map(|u| FixedGossip::new((l * g.node_count() + u) as u64, FACTS, rounds))
                .collect()
        })
        .collect();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let results = sim.run(fleets).unwrap();
    for lane in &results {
        let lane = lane.as_ref().unwrap();
        assert_eq!(lane.stats.rounds, rounds);
        assert!(lane.outputs.iter().all(Option::is_some));
    }
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn arena_gossip_steady_state_allocates_nothing_per_round() {
    let g = ring(24, WeightStrategy::Unit);

    // Warm-up: prime the per-thread plane pool, the arenas and the spare
    // messages to their high-water marks for every backing.
    for backing in Backing::ALL {
        gossip_allocations(&g, backing, ROUNDS_LONG);
    }

    let arena_short = gossip_allocations(&g, Backing::Arena, ROUNDS_SHORT);
    let arena_long = gossip_allocations(&g, Backing::Arena, ROUNDS_LONG);
    assert_eq!(
        arena_long, arena_short,
        "arena-backed gossip must not allocate per round \
         ({ROUNDS_LONG}-round run: {arena_long} allocations, \
         {ROUNDS_SHORT}-round run: {arena_short})"
    );

    // Control: the inline backing clones the facts vector per message, so
    // the extra rounds must show up — proving the measurement has teeth.
    let inline_short = gossip_allocations(&g, Backing::Inline, ROUNDS_SHORT);
    let inline_long = gossip_allocations(&g, Backing::Inline, ROUNDS_LONG);
    assert!(
        inline_long > inline_short,
        "inline-backed gossip was expected to allocate per round \
         (got {inline_short} vs {inline_long}) — is the control broken?"
    );

    // Driver-overhead oracle (same binary so the global counter stays
    // single-threaded): a `Sim`-built run must perform exactly as many
    // allocations as a direct `Runtime::run` with a pre-built `RunConfig` —
    // the builder is zero-cost.
    let mk = || -> Vec<FixedGossip> {
        g.nodes()
            .map(|u| FixedGossip::new(u as u64, FACTS, ROUNDS_SHORT))
            .collect()
    };
    let config = Sim::on(&g).backing(Backing::Arena).config();
    Runtime::with_config(&g, config).run(mk()).unwrap();
    let direct = allocations_of(|| {
        Runtime::with_config(&g, config).run(mk()).unwrap();
    });
    let built = allocations_of(|| {
        Sim::on(&g).backing(Backing::Arena).run(mk()).unwrap();
    });
    assert_eq!(
        built, direct,
        "the Sim builder must add zero per-run allocations over a direct \
         Runtime::run (builder: {built}, direct: {direct})"
    );

    // ------------------------------------------------------------------
    // Hybrid backing, both regimes.  Same test function (not a second
    // `#[test]`): the harness runs tests on parallel threads, which would
    // interleave allocations into the single global counter.
    // ------------------------------------------------------------------

    // Warm-up: prime the hybrid plane pool, cells, spill arena and spare
    // messages to their high-water marks for the beacon probe (the gossip
    // warm-up above already covered hybrid).
    beacon_allocations(&g, Backing::Hybrid, ROUNDS_LONG);

    // Spill regime: every `Knowledge` encoding (48 facts) overflows the
    // 16-byte cell into the bump arena — the arena discipline must keep
    // steady-state rounds allocation-free, exactly like the arena backing.
    let flood_short = gossip_allocations(&g, Backing::Hybrid, ROUNDS_SHORT);
    let flood_long = gossip_allocations(&g, Backing::Hybrid, ROUNDS_LONG);
    assert_eq!(
        flood_long, flood_short,
        "hybrid-backed Knowledge flood must not allocate per round \
         ({ROUNDS_LONG}-round run: {flood_long} allocations, \
         {ROUNDS_SHORT}-round run: {flood_short})"
    );

    // Inline regime: a `u64` beacon encodes to a couple of bytes, so every
    // message lives in its cell and the arena is never touched — and the
    // cell path must be just as allocation-free.
    let beacon_short = beacon_allocations(&g, Backing::Hybrid, ROUNDS_SHORT);
    let beacon_long = beacon_allocations(&g, Backing::Hybrid, ROUNDS_LONG);
    assert_eq!(
        beacon_long, beacon_short,
        "hybrid-backed small-message beacon must not allocate per round \
         ({ROUNDS_LONG}-round run: {beacon_long} allocations, \
         {ROUNDS_SHORT}-round run: {beacon_short})"
    );

    // ------------------------------------------------------------------
    // Batch executor (same single-`#[test]` discipline): the lockstep loop
    // drives every lane through one traversal per round, and its live-lane
    // iteration reuses a scratch buffer — steady-state batch rounds must be
    // exactly as allocation-free as solo ones.
    // ------------------------------------------------------------------
    batch_gossip_allocations(&g, Backing::Arena, ROUNDS_LONG);
    let batch_short = batch_gossip_allocations(&g, Backing::Arena, ROUNDS_SHORT);
    let batch_long = batch_gossip_allocations(&g, Backing::Arena, ROUNDS_LONG);
    assert_eq!(
        batch_long, batch_short,
        "arena-backed batch gossip must not allocate per round \
         ({ROUNDS_LONG}-round run: {batch_long} allocations, \
         {ROUNDS_SHORT}-round run: {batch_short})"
    );
}
