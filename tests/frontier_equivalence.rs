//! Equivalence suite for sparse frontier execution.
//!
//! The frontier schedule (`FrontierMode::{Auto, Dense, Sparse}`) is a pure
//! *scheduling* knob: for a program that honours the
//! [`NodeAlgorithm::MESSAGE_DRIVEN`] contract, every mode on every executor
//! (sequential, sharded, batch, batch-sharded — and the push-based
//! reference, which never skips anyone) must produce bit-identical outputs,
//! stats, traces and error paths.  These tests pin exactly that, plus the
//! schedule-*independent* observability contract: the recorded
//! `per_round_active_nodes` is the same whatever the mode, engine or lane
//! (only `per_round_sparse`, the decision itself, may differ).

use lma_baselines::WaveFlood;
use lma_graph::generators::{gnp_connected, grid, ring};
use lma_graph::weights::WeightStrategy;
use lma_graph::{Port, WeightedGraph};
use lma_sim::{
    Backing, Engine, FrontierMode, LocalView, NodeAlgorithm, Outbox, RunError, RunResult,
    RunSummary, Sim,
};
use proptest::prelude::*;

const MODES: [FrontierMode; 3] = [
    FrontierMode::Auto,
    FrontierMode::Dense,
    FrontierMode::Sparse,
];

/// A wave fleet on `g`: node 0 is the source; nodes where `eager(u)` holds
/// decline the sparse schedule at the instance level (mixed fleets).
fn wave_fleet(g: &WeightedGraph, eager: impl Fn(usize) -> bool) -> Vec<WaveFlood> {
    g.nodes()
        .map(|u| {
            if eager(u) {
                WaveFlood::eager(u == 0)
            } else {
                WaveFlood::new(u == 0)
            }
        })
        .collect()
}

/// Bit-identical results, including the mode-independent frontier counts.
fn assert_identical(a: &RunResult<(u64, u64)>, b: &RunResult<(u64, u64)>, what: &str) {
    assert_eq!(a.outputs, b.outputs, "{what}: outputs diverged");
    assert_eq!(a.stats, b.stats, "{what}: stats diverged");
    assert_eq!(a.trace, b.trace, "{what}: trace diverged");
    assert_eq!(
        a.stats.per_round_active_nodes, b.stats.per_round_active_nodes,
        "{what}: per-round active counts diverged (they are schedule-independent)"
    );
}

fn graphs() -> Vec<(&'static str, WeightedGraph)> {
    vec![
        (
            "ring",
            ring(29, WeightStrategy::DistinctRandom { seed: 71 }),
        ),
        (
            "grid",
            grid(5, 8, WeightStrategy::DistinctRandom { seed: 72 }),
        ),
        (
            "gnp",
            gnp_connected(48, 0.1, 73, WeightStrategy::DistinctRandom { seed: 73 }),
        ),
    ]
}

/// The deterministic tentpole pin: force-sparse ≡ force-dense ≡ auto on
/// every backing and thread count, and all of them ≡ the push reference.
#[test]
fn forced_sparse_equals_forced_dense_across_executors_and_backings() {
    for (name, g) in graphs() {
        for backing in Backing::ALL {
            let base = Sim::on(&g).trace(true).backing(backing);
            let dense = base
                .frontier(FrontierMode::Dense)
                .run(wave_fleet(&g, |_| false))
                .unwrap();
            for mode in MODES {
                for threads in [1usize, 3] {
                    let run = base
                        .frontier(mode)
                        .threads(threads)
                        .run(wave_fleet(&g, |_| false))
                        .unwrap();
                    assert_identical(
                        &dense,
                        &run,
                        &format!("{name}/{backing:?}/{}/threads={threads}", mode.label()),
                    );
                }
            }
            let push = base
                .executor(Engine::Reference)
                .run(wave_fleet(&g, |_| false))
                .unwrap();
            // The oracle records no frontier, so compare the run artefacts
            // (stats equality already excludes the frontier observability).
            assert_eq!(push.outputs, dense.outputs, "{name}: push outputs");
            assert_eq!(push.stats, dense.stats, "{name}: push stats");
            assert_eq!(push.trace, dense.trace, "{name}: push trace");
            assert!(push.stats.per_round_active_nodes.is_empty());
        }
    }
}

/// Batch lanes — including a mixed fleet where only some lanes' programs
/// are message-driven — match their solo runs lane for lane, with
/// lane-exact frontier counts, on both the sequential and sharded tilings.
#[test]
fn batched_wave_lanes_match_solo_runs_including_mixed_eager_lanes() {
    let g = gnp_connected(40, 0.12, 77, WeightStrategy::DistinctRandom { seed: 77 });
    // Lane 0: fully message-driven; lane 1: every instance eager (dense
    // schedule by contract); lane 2: every third node eager.
    let lane_masks: [fn(usize) -> bool; 3] = [|_| false, |_| true, |u| u % 3 == 0];
    for backing in Backing::ALL {
        for mode in MODES {
            let sim = Sim::on(&g).trace(true).backing(backing).frontier(mode);
            let solos: Vec<RunResult<(u64, u64)>> = lane_masks
                .iter()
                .map(|mask| sim.run(wave_fleet(&g, mask)).unwrap())
                .collect();
            for threads in [1usize, 3] {
                let results = sim
                    .threads(threads)
                    .batch(lane_masks.len())
                    .run(lane_masks.iter().map(|mask| wave_fleet(&g, mask)).collect())
                    .unwrap();
                for (l, (solo, lane)) in solos.iter().zip(results).enumerate() {
                    assert_identical(
                        solo,
                        &lane.unwrap(),
                        &format!("{backing:?}/{}/threads={threads}/lane={l}", mode.label()),
                    );
                }
            }
        }
    }
}

/// A message-driven wave whose designated node also sends through a port it
/// does not have when the wave reaches it — the malformed-outbox error path
/// under the sparse schedule.
struct RogueWave {
    inner: WaveFlood,
    rogue: bool,
}

impl NodeAlgorithm for RogueWave {
    type Msg = u64;
    type Output = (u64, u64);

    const MESSAGE_DRIVEN: bool = true;

    fn message_driven(&self) -> bool {
        self.inner.message_driven()
    }

    fn init(&mut self, view: &LocalView) -> Outbox<u64> {
        self.inner.init(view)
    }

    fn round(&mut self, view: &LocalView, round: usize, inbox: &[(Port, u64)]) -> Outbox<u64> {
        let mut out = self.inner.round(view, round, inbox);
        if self.rogue && !out.is_empty() {
            out.push((view.degree(), 7));
        }
        out
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn output(&self) -> Option<(u64, u64)> {
        self.inner.output()
    }
}

#[test]
fn malformed_outbox_mid_wave_fails_identically_under_every_schedule() {
    let g = ring(26, WeightStrategy::Unit);
    // Node 9 turns rogue the round the wave reaches it (round 9), well into
    // the sparse regime.
    let mk = || {
        g.nodes()
            .map(|u| RogueWave {
                inner: WaveFlood::new(u == 0),
                rogue: u == 9,
            })
            .collect::<Vec<_>>()
    };
    let want = Sim::on(&g)
        .frontier(FrontierMode::Dense)
        .run(mk())
        .unwrap_err();
    assert!(matches!(want, RunError::MalformedOutbox { node: 9, .. }));
    for backing in Backing::ALL {
        for mode in MODES {
            for threads in [1usize, 3] {
                let sim = Sim::on(&g).backing(backing).frontier(mode).threads(threads);
                let err = sim.run(mk()).unwrap_err();
                assert_eq!(
                    err,
                    want,
                    "backing {backing:?} mode {} threads {threads}",
                    mode.label()
                );
                // Batched: the rogue lane alone fails; a clean lane completes.
                let results = sim.batch(2).run(vec![mk(), wave_rogueless(&g)]).unwrap();
                assert_eq!(results[0].as_ref().unwrap_err(), &want);
                assert!(results[1].is_ok());
            }
        }
    }
}

fn wave_rogueless(g: &WeightedGraph) -> Vec<RogueWave> {
    g.nodes()
        .map(|u| RogueWave {
            inner: WaveFlood::new(u == 0),
            rogue: false,
        })
        .collect()
}

/// The auto heuristic actually engages: a ring wave touches at most 4 nodes
/// a round (two wavefront tips plus the neighbours they echo back to), so
/// every round runs sparse, and the run summary surfaces the schedule
/// without perturbing the digest-bearing fields.
#[test]
fn auto_mode_goes_sparse_on_a_ring_wave_and_reports_it() {
    let g = ring(64, WeightStrategy::Unit);
    let auto = Sim::on(&g)
        .frontier(FrontierMode::Auto)
        .run(wave_fleet(&g, |_| false))
        .unwrap();
    assert!(
        auto.stats.per_round_sparse.iter().all(|&s| s),
        "a ≤4-node frontier on a 64-ring must always go sparse"
    );
    assert!(auto
        .stats
        .per_round_active_nodes
        .iter()
        .all(|&a| (1..=4).contains(&a)));
    let profile = RunSummary::of_stats(&auto.stats).frontier.unwrap();
    assert_eq!(profile.sparse_rounds, auto.stats.rounds);
    assert_eq!(profile.dense_rounds, 0);
    assert_eq!(
        profile.peak_active,
        auto.stats
            .per_round_active_nodes
            .iter()
            .copied()
            .max()
            .unwrap()
    );

    let dense = Sim::on(&g)
        .frontier(FrontierMode::Dense)
        .run(wave_fleet(&g, |_| false))
        .unwrap();
    assert!(dense.stats.per_round_sparse.iter().all(|&s| !s));
    assert_eq!(
        dense.stats.per_round_active_nodes,
        auto.stats.per_round_active_nodes
    );
    // A fully eager fleet keeps every node on the frontier, so auto stays
    // dense and the schedule degenerates to today's scan — same artefacts,
    // but the recorded counts now reflect the whole fleet.
    let eager = Sim::on(&g)
        .frontier(FrontierMode::Auto)
        .run(wave_fleet(&g, |_| true))
        .unwrap();
    assert_eq!(eager.outputs, dense.outputs, "eager wave: outputs");
    assert_eq!(eager.stats, dense.stats, "eager wave: stats");
    assert_eq!(eager.trace, dense.trace, "eager wave: trace");
    assert!(eager.stats.per_round_sparse.iter().all(|&s| !s));
    assert!(
        eager
            .stats
            .per_round_active_nodes
            .iter()
            .all(|&a| a == g.node_count() as u64),
        "an eager instance stays on the frontier even once done"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random G(n, p) graphs, thread counts, backings and eager mixes: the
    /// sparse, dense and auto schedules agree bit-for-bit with each other
    /// and across the sequential, sharded and batch executors.
    #[test]
    fn frontier_schedules_agree_on_random_graphs(
        n in 8usize..40,
        p_mil in 80u32..400,
        seed in 0u64..500,
        backing_ix in 0usize..3,
        threads in 1usize..4,
        eager_stride in 0usize..4,
    ) {
        let p = f64::from(p_mil) / 1000.0;
        let g = gnp_connected(n, p, seed, WeightStrategy::DistinctRandom { seed });
        let backing = Backing::ALL[backing_ix];
        let eager = move |u: usize| eager_stride != 0 && u.is_multiple_of(eager_stride + 1);
        let base = Sim::on(&g).trace(true).backing(backing);
        let dense = base.frontier(FrontierMode::Dense).run(wave_fleet(&g, eager)).unwrap();
        for mode in MODES {
            let sim = base.frontier(mode).threads(threads);
            let run = sim.run(wave_fleet(&g, eager)).unwrap();
            assert_identical(&dense, &run, &format!("solo {}", mode.label()));
            let lanes = 3;
            let results = sim
                .batch(lanes)
                .run((0..lanes).map(|_| wave_fleet(&g, eager)).collect())
                .unwrap();
            for (l, lane) in results.into_iter().enumerate() {
                assert_identical(&dense, &lane.unwrap(), &format!("lane {l} {}", mode.label()));
            }
        }
    }
}
