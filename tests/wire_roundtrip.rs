//! Property suite for the `Wire` codec (vendored proptest): for every
//! message type in the workspace,
//!
//! 1. **round trip** — `decode ∘ encode = id`, consuming the encoded span
//!    exactly;
//! 2. **reuse** — `decode_into` over an arbitrary pre-existing value yields
//!    the same result as a fresh decode (this is the path the arena plane's
//!    spare-message recycling takes every round);
//! 3. **honest sizing** — `bit_size() <= 8 * encoded_len`, so the byte
//!    arena can never make a message cheaper than the CONGEST accounting
//!    claims it is;
//! 4. **stable appending length** — [`encoded_len`] is deterministic and
//!    `encode` appends exactly that many bytes wherever the buffer tail
//!    is.  The hybrid backing decides inline-vs-spill by encoding onto the
//!    arena tail and measuring the growth, so the 15-byte threshold is
//!    made on a number pinned correct here.
//!
//! These properties are what let the arena- and hybrid-backed executors be
//! bit-identical to the inline and push executors: routing through bytes is
//! invisible exactly when the codec is lossless and the accounting honest.

use lma_advice::constant::messages::{ChooserPayload, ConstMsg, MapEntry, Report};
use lma_advice::BitString;
use lma_baselines::flood_collect::{EdgeFact, Knowledge};
use lma_baselines::sync_boruvka::GhsMsg;
use lma_labeling::labels::SpanningLabel;
use lma_labeling::mst_cert::CertMsg;
use lma_labeling::spanning::SpanningMsg;
use lma_labeling::CentroidEntry;
use lma_sim::message::BitSized;
use lma_sim::wire::{Wire, WireReader};
use proptest::prelude::*;

/// The encoded byte length of `value`: a fresh encode into an empty
/// buffer.  This is the number the hybrid backing's inline/spill threshold
/// decision is made on (≤ 15 bytes stays in the 16-byte cell).
fn encoded_len<T: Wire>(value: &T) -> usize {
    let mut bytes = Vec::new();
    value.encode(&mut bytes);
    bytes.len()
}

/// Pins all the codec properties for one value.  `scratch` is an
/// arbitrary unrelated value of the same type used as the `decode_into`
/// target (mimicking a recycled spare).
fn pin_codec<T: Wire + BitSized + PartialEq + std::fmt::Debug>(value: &T, scratch: T) {
    let mut bytes = Vec::new();
    value.encode(&mut bytes);

    assert_eq!(
        encoded_len(value),
        bytes.len(),
        "encoded_len must be deterministic per value"
    );
    // `encode` must *append* exactly `encoded_len` bytes wherever the
    // buffer tail is — the hybrid store encodes onto the arena tail and
    // measures the growth to pick inline vs spill.
    let mut prefixed = vec![0xA5u8; 3];
    value.encode(&mut prefixed);
    assert_eq!(
        prefixed.len(),
        3 + bytes.len(),
        "encode must append exactly encoded_len bytes"
    );
    assert_eq!(
        &prefixed[..3],
        &[0xA5u8; 3],
        "encode must not touch the prefix"
    );
    assert_eq!(
        &prefixed[3..],
        &bytes[..],
        "appended encoding must be identical"
    );

    let mut reader = WireReader::new(&bytes);
    let decoded = T::decode(&mut reader);
    assert_eq!(&decoded, value, "decode ∘ encode must be the identity");
    assert!(
        reader.is_exhausted(),
        "decode must consume the span exactly"
    );

    let mut revived = scratch;
    let mut reader = WireReader::new(&bytes);
    revived.decode_into(&mut reader);
    assert_eq!(&revived, value, "decode_into must overwrite completely");
    assert!(reader.is_exhausted(), "decode_into must consume the span");

    assert!(
        value.bit_size() <= 8 * bytes.len(),
        "bit_size {} exceeds the encoding's 8 × {} bits",
        value.bit_size(),
        bytes.len()
    );
}

fn fact((a, b, w): (u64, u64, u64)) -> EdgeFact {
    EdgeFact { a, b, w }
}

/// Assembles a tree out of flat drawn data: item 0 is the root; each later
/// node attaches under an earlier node chosen by its `parent` draw.
fn build_report(items: &[(Vec<bool>, usize)]) -> Report {
    let mut nodes: Vec<Report> = items
        .iter()
        .map(|(bits, _)| Report::leaf(bits.clone()))
        .collect();
    while nodes.len() > 1 {
        let child = nodes.pop().expect("len > 1");
        let index = nodes.len();
        let parent = items[index].1 % index;
        nodes[parent].children.push(child);
    }
    nodes.pop().expect("one root remains")
}

fn build_map(items: &[(usize, u64, usize)]) -> MapEntry {
    let chooser = |draw: u64| match draw % 3 {
        0 => None,
        1 => Some(ChooserPayload::Index {
            up: draw & 4 != 0,
            rank: (draw >> 3) as usize % 97 + 1,
        }),
        _ => Some(ChooserPayload::Level {
            up: draw & 4 != 0,
            target_level: (draw >> 3) as u8,
        }),
    };
    let mut nodes: Vec<MapEntry> = items
        .iter()
        .map(|&(consume, draw, _)| MapEntry {
            consume,
            chooser: chooser(draw),
            children: Vec::new(),
        })
        .collect();
    while nodes.len() > 1 {
        let child = nodes.pop().expect("len > 1");
        let index = nodes.len();
        let parent = items[index].2 % index;
        nodes[parent].children.push(child);
    }
    nodes.pop().expect("one root remains")
}

fn ghs_msg(tag: u64, a: u64, b: u64, c: u64) -> GhsMsg {
    match tag % 6 {
        0 => GhsMsg::Fragment { fragment: a, id: b },
        1 => GhsMsg::Best {
            key: c.is_multiple_of(2).then_some((a, b, c)),
            size: c,
        },
        2 => GhsMsg::Token,
        3 => GhsMsg::Done,
        4 => GhsMsg::Merge { sender: a },
        _ => GhsMsg::NewFragment(b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn primitives_round_trip(
        x in any::<u64>(),
        y in 0u32..u32::MAX,
        z in 0usize..1 << 40,
        flag in any::<bool>(),
        opt in any::<u64>(),
        items in collection::vec(any::<u64>(), 0..24),
    ) {
        pin_codec(&x, 0u64);
        pin_codec(&y, 1u32);
        pin_codec(&z, 2usize);
        pin_codec(&flag, !flag);
        pin_codec(&(), ());
        pin_codec(&(opt.is_multiple_of(2).then_some(opt)), Some(9));
        pin_codec(&items, vec![1, 2, 3]);
        pin_codec(&(x, flag), (0u64, false));
        pin_codec(&(x, y as u64, z as u64), (0u64, 0u64, 0u64));
    }

    #[test]
    fn baseline_messages_round_trip(
        sender in any::<u64>(),
        facts in collection::vec((any::<u64>(), any::<u64>(), 0u64..1 << 32), 0..40),
        stale in collection::vec((any::<u64>(), any::<u64>(), 0u64..64), 0..6),
        ghs in collection::vec(((0u64..6, any::<u64>()), (any::<u64>(), any::<u64>())), 1..12),
    ) {
        for &f in &facts {
            pin_codec(&fact(f), fact((9, 9, 9)));
        }
        let knowledge = Knowledge {
            sender,
            facts: facts.iter().copied().map(fact).collect(),
        };
        // The decode_into target carries its own junk facts, as a recycled
        // spare would.
        let scratch = Knowledge {
            sender: !sender,
            facts: stale.iter().copied().map(fact).collect(),
        };
        pin_codec(&knowledge, scratch);
        for &((tag, a), (b, c)) in &ghs {
            pin_codec(&ghs_msg(tag, a, b, c), GhsMsg::Token);
            pin_codec(&ghs_msg(tag, a, b, c), ghs_msg(tag.wrapping_add(1), c, a, b));
        }
    }

    #[test]
    fn advice_messages_round_trip(
        report_items in collection::vec((collection::vec(any::<bool>(), 0..9), 0usize..1 << 16), 1..14),
        map_items in collection::vec((0usize..1 << 20, any::<u64>(), 0usize..1 << 16), 1..14),
        level in any::<u8>(),
    ) {
        let report = build_report(&report_items);
        let map = build_map(&map_items);
        pin_codec(&report, Report::leaf(vec![true]));
        pin_codec(&map, MapEntry::empty());
        pin_codec(&ConstMsg::Report(report.clone()), ConstMsg::Parent);
        pin_codec(&ConstMsg::Map(map.clone()), ConstMsg::Report(Report::leaf(vec![])));
        pin_codec(&ConstMsg::Parent, ConstMsg::Level(0));
        pin_codec(&ConstMsg::Level(level), ConstMsg::Map(MapEntry::empty()));
    }

    #[test]
    fn labeling_messages_round_trip(
        root_id in any::<u64>(),
        depth in 0u64..1 << 40,
        parent_edge in any::<bool>(),
        entries in collection::vec((0usize..1 << 20, 0usize..64, any::<u64>()), 0..12),
    ) {
        let label = SpanningLabel { root_id, depth };
        pin_codec(&label, SpanningLabel { root_id: 0, depth: 0 });
        pin_codec(
            &SpanningMsg { label, parent_edge },
            SpanningMsg { label: SpanningLabel { root_id: 1, depth: 1 }, parent_edge: !parent_edge },
        );
        let entries: Vec<CentroidEntry> = entries
            .iter()
            .map(|&(centroid, level, max_weight)| CentroidEntry { centroid, level, max_weight })
            .collect();
        for e in &entries {
            pin_codec(e, CentroidEntry { centroid: 0, level: 0, max_weight: 0 });
        }
        let cert = CertMsg { spanning: label, entries, parent_edge };
        let scratch = CertMsg {
            spanning: SpanningLabel { root_id: 3, depth: 4 },
            entries: vec![CentroidEntry { centroid: 5, level: 6, max_weight: 7 }],
            parent_edge: !parent_edge,
        };
        pin_codec(&cert, scratch);
    }
}

// ---------------------------------------------------------------------------
// BitString: the advice-side bit-exact codec.  Advice strings ride the same
// oracle → decode pipeline the Wire codec serves on the message side, so
// their append/read round trips, bit-length accounting and concatenation
// are pinned here alongside the message codecs.
// ---------------------------------------------------------------------------

proptest! {
    /// `read_uint ∘ push_uint = id` for any (value, width) sequence, with
    /// exact bit-length accounting along the way.
    #[test]
    fn bitstring_uint_sequences_round_trip(
        fields in proptest::collection::vec((any::<u64>(), 1usize..65), 0..12)
    ) {
        let mut s = BitString::new();
        let mut expected_len = 0usize;
        let masked: Vec<(u64, usize)> = fields
            .iter()
            .map(|&(value, width)| {
                let masked = if width == 64 { value } else { value & ((1 << width) - 1) };
                (masked, width)
            })
            .collect();
        for &(value, width) in &masked {
            s.push_uint(value, width);
            expected_len += width;
            prop_assert_eq!(s.len(), expected_len, "length must track every append");
        }
        prop_assert_eq!(s.is_empty(), masked.is_empty());
        let mut reader = s.reader();
        for &(value, width) in &masked {
            prop_assert_eq!(reader.read_uint(width), Some(value));
        }
        prop_assert_eq!(reader.remaining(), 0);
        prop_assert_eq!(reader.read_bit(), None, "a drained reader must stay drained");
    }

    /// Raw bits survive `from_bits` → `iter`/`get`/`read_bits` unchanged,
    /// and `to_bit_string` renders exactly one character per bit.
    #[test]
    fn bitstring_raw_bits_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..160)) {
        let s = BitString::from_bits(bits.clone());
        prop_assert_eq!(s.len(), bits.len());
        prop_assert_eq!(s.iter().collect::<Vec<_>>(), bits.clone());
        prop_assert_eq!(s.as_slice(), bits.as_slice());
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(s.get(i), Some(bit));
        }
        prop_assert_eq!(s.get(bits.len()), None);
        let rendered = s.to_bit_string();
        prop_assert_eq!(rendered.len(), bits.len());
        prop_assert!(rendered.chars().zip(&bits).all(|(c, &b)| c == if b { '1' } else { '0' }));
        prop_assert_eq!(s.reader().read_bits(bits.len()), Some(bits));
    }

    /// `extend` concatenates exactly: lengths add, and reading the result
    /// yields the left string's bits then the right's.
    #[test]
    fn bitstring_concat_is_exact(
        left in proptest::collection::vec(any::<bool>(), 0..100),
        right in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let mut a = BitString::from_bits(left.clone());
        let b = BitString::from_bits(right.clone());
        a.extend(&b);
        prop_assert_eq!(a.len(), left.len() + right.len());
        let mut expected = left.clone();
        expected.extend_from_slice(&right);
        prop_assert_eq!(a.iter().collect::<Vec<_>>(), expected);
        // The right operand is untouched, and a reader positioned at the
        // seam sees exactly the right operand's bits.
        prop_assert_eq!(b.iter().collect::<Vec<_>>(), right.clone());
        let mut reader = a.reader_at(left.len());
        prop_assert_eq!(reader.read_bits(right.len()), Some(right));
        prop_assert_eq!(reader.remaining(), 0);
    }

    /// Mixed single-bit and uint appends account and read back in order —
    /// the exact shape the one-round scheme's bitmap + payload advice uses.
    #[test]
    fn bitstring_mixed_appends_read_back_in_order(
        flag in any::<bool>(),
        rank in 0u64..512,
        width in 10usize..17,
    ) {
        let mut s = BitString::new();
        s.push(flag);
        s.push_uint(rank, width);
        prop_assert_eq!(s.len(), 1 + width);
        let mut reader = s.reader();
        prop_assert_eq!(reader.read_bit(), Some(flag));
        prop_assert_eq!(reader.read_uint(width), Some(rank));
        prop_assert_eq!(reader.position(), 1 + width);
    }
}
