//! Property-based integration tests: random graphs, random seeds, invariant
//! checks across the whole pipeline (generator → oracle → simulator →
//! verifier).

use lma_advice::{evaluate_scheme, AdvisingScheme, ConstantScheme, OneRoundScheme, TrivialScheme};
use lma_graph::generators::connected_random;
use lma_graph::validate::check_instance;
use lma_graph::weights::WeightStrategy;
use lma_mst::boruvka::{run_boruvka, BoruvkaConfig, TieBreak};
use lma_mst::kruskal::{kruskal_mst, mst_weight};
use lma_mst::prim_mst;
use lma_mst::verify::verify_mst_edges;
use lma_sim::Sim;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The three sequential MST algorithms agree on the optimum weight for
    /// arbitrary connected random graphs, with or without duplicate weights.
    #[test]
    fn sequential_msts_agree(n in 4usize..40, extra in 0usize..60, seed in 0u64..1000, max_w in 1u64..50) {
        let g = connected_random(n, n - 1 + extra, seed, WeightStrategy::UniformRandom { seed, max: max_w });
        check_instance(&g).unwrap();
        let kruskal = kruskal_mst(&g).unwrap();
        let prim = prim_mst(&g).unwrap();
        prop_assert_eq!(g.weight_of(&kruskal), g.weight_of(&prim));
        let boruvka = run_boruvka(&g, &BoruvkaConfig { root: None, tie_break: TieBreak::CanonicalGlobal }).unwrap();
        prop_assert_eq!(g.weight_of(&boruvka.mst_edges), g.weight_of(&kruskal));
        verify_mst_edges(&g, &boruvka.mst_edges).unwrap();
    }

    /// Every advising scheme returns a verified minimum spanning tree within
    /// its claimed bounds on arbitrary distinct-weight random graphs.
    #[test]
    fn schemes_hold_their_claims(n in 4usize..60, extra in 0usize..80, seed in 0u64..500) {
        let g = connected_random(n, n - 1 + extra, seed, WeightStrategy::DistinctRandom { seed });
        let optimal = mst_weight(&g).unwrap();
        let schemes: Vec<Box<dyn AdvisingScheme>> = vec![
            Box::new(TrivialScheme::default()),
            Box::new(OneRoundScheme::default()),
            Box::new(ConstantScheme::default()),
        ];
        for scheme in &schemes {
            let eval = evaluate_scheme(scheme.as_ref(), &Sim::on(&g)).unwrap();
            prop_assert_eq!(g.weight_of(&eval.tree.edges), optimal);
            prop_assert!(eval.within_claims(scheme.as_ref(), g.node_count()));
        }
    }

    /// The Borůvka decomposition invariants (Lemma 1, Lemma 2, orientation
    /// and level consistency) hold on arbitrary distinct-weight graphs.
    #[test]
    fn boruvka_decomposition_invariants(n in 4usize..50, extra in 0usize..70, seed in 0u64..500) {
        let g = connected_random(n, n - 1 + extra, seed, WeightStrategy::DistinctRandom { seed });
        let run = run_boruvka(&g, &BoruvkaConfig::default()).unwrap();
        for phase in 1..=run.merge_phases() {
            let rec = run.phase(phase);
            for frag in &rec.fragments {
                // Lemma 1.
                prop_assert!(frag.size() >= (1usize << (phase - 1)).min(n));
                // BFS order covers the fragment and starts at its root.
                prop_assert_eq!(frag.bfs_order.len(), frag.size());
                prop_assert_eq!(frag.bfs_order[0], frag.root);
                if let Some(sel) = &frag.selection {
                    // Lemma 2 (with the +1 slack documented in DESIGN.md).
                    prop_assert!(sel.index.sum() <= frag.size() + 1);
                    prop_assert!(run.tree.contains_edge(sel.edge));
                    prop_assert_eq!(sel.up, run.tree.is_up_at(sel.choosing_node, sel.edge));
                }
            }
        }
    }

    /// The one-round scheme's average advice respects the analytic constant
    /// of Theorem 2 on arbitrary graphs.
    #[test]
    fn one_round_average_bound(n in 8usize..200, seed in 0u64..300) {
        let g = connected_random(n, 3 * n, seed, WeightStrategy::DistinctRandom { seed });
        let eval = evaluate_scheme(&OneRoundScheme::default(), &Sim::on(&g)).unwrap();
        prop_assert!(eval.advice.avg_bits <= OneRoundScheme::ANALYTIC_AVERAGE_BOUND);
        prop_assert_eq!(eval.run.rounds, 1);
    }

    /// The constant scheme's advice never exceeds its constant cap,
    /// regardless of n and topology.
    #[test]
    fn constant_scheme_cap(n in 4usize..150, seed in 0u64..300) {
        let g = connected_random(n, 2 * n, seed, WeightStrategy::DistinctRandom { seed });
        let scheme = ConstantScheme::default();
        let eval = evaluate_scheme(&scheme, &Sim::on(&g)).unwrap();
        prop_assert!(eval.advice.max_bits <= scheme.claimed_max_bits(n).unwrap());
    }
}
