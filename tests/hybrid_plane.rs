//! Property suite for the hybrid plane backing (vendored proptest): the
//! tagged 16-byte cell layout around its 15-byte inline/spill threshold.
//!
//! 1. **threshold round trip** — payloads whose `Wire` encoding lands on
//!    14/15/16/17 bytes (both sides of the tag) round-trip through
//!    `store`/`store_ref`/`fetch`, with the spill arena growing exactly by
//!    the encodings that do not fit a cell;
//! 2. **duplicate parity** — a write sequence produces byte-identical
//!    `Ok`/`SlotOccupied` outcomes on the inline, arena and hybrid
//!    backings (first write wins everywhere, and the reported slot/len
//!    agree);
//! 3. **delivery parity** — after the same writes, all three backings
//!    deliver the same message exactly once per slot.
//!
//! `Vec<u8>` is the probe type: `k` items encode to `1 + k` bytes
//! (`k < 128` — one LEB128 length byte plus the raw bytes), so the drawn
//! payload length dials the encoded size exactly and the threshold can be
//! hit on the byte.

use lma_sim::wire::Wire;
use lma_sim::{ArenaPlane, HybridPlane, MessagePlane, PlaneStore, SlotOccupied};
use proptest::prelude::*;

type Msg = Vec<u8>;

/// Encoded byte length of one probe payload.
fn encoded_len(msg: &Msg) -> usize {
    let mut bytes = Vec::new();
    msg.encode(&mut bytes);
    bytes.len()
}

/// Stores every payload into its own slot (alternating the consuming
/// `store` and the by-reference `store_ref` paths), checks the spill
/// accounting against the 15-byte threshold, then fetches everything back.
fn pin_hybrid_roundtrip(payloads: &[Msg], store_ref_odd: bool) {
    let mut plane: HybridPlane<Msg> = HybridPlane::new(payloads.len());
    let mut spare: Vec<Msg> = Vec::new();
    let mut expected_spill = 0usize;
    for (slot, payload) in payloads.iter().enumerate() {
        let n = encoded_len(payload);
        assert_eq!(n, 1 + payload.len(), "Vec<u8> premise: one length byte");
        if n > 15 {
            expected_spill += n;
        }
        if store_ref_odd && slot % 2 == 1 {
            plane.store_ref(slot, payload).expect("free slot");
        } else {
            plane
                .store(slot, payload.clone(), &mut spare)
                .expect("free slot");
        }
        assert_eq!(
            plane.spill_bytes(),
            expected_spill,
            "only encodings over 15 bytes may touch the arena"
        );
    }
    for (slot, payload) in payloads.iter().enumerate() {
        assert_eq!(
            plane.fetch(slot, &mut spare).as_ref(),
            Some(payload),
            "slot {slot} must deliver what was stored"
        );
        assert_eq!(
            plane.fetch(slot, &mut spare),
            None,
            "a message is delivered once"
        );
    }
    plane.reset_round();
    assert_eq!(plane.spill_bytes(), 0, "round reset empties the arena");
}

/// Runs one write sequence through a backend, recording each outcome, then
/// drains the plane so the arena's round-reset invariant holds.
fn outcomes<S: PlaneStore<Msg>>(
    len: usize,
    writes: &[(usize, Msg)],
) -> (Vec<Result<(), SlotOccupied>>, Vec<Option<Msg>>) {
    let mut plane = S::with_len(len);
    let mut spare: Vec<Msg> = Vec::new();
    let results = writes
        .iter()
        .map(|(slot, msg)| plane.store(*slot, msg.clone(), &mut spare))
        .collect();
    let delivered = (0..len).map(|s| plane.fetch(s, &mut spare)).collect();
    plane.reset_round();
    (results, delivered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary payload sizes straddling the threshold round-trip through
    /// both store paths, with exact spill accounting.
    #[test]
    fn hybrid_round_trips_across_the_tag_threshold(
        payloads in collection::vec(collection::vec(any::<u8>(), 0..40), 1..16),
        store_ref_odd in any::<bool>(),
    ) {
        pin_hybrid_roundtrip(&payloads, store_ref_odd);
    }

    /// The same write sequence (duplicates included) yields identical
    /// `SlotOccupied` reports and identical deliveries on every backing.
    #[test]
    fn duplicate_reporting_matches_the_other_backings(
        len in 1usize..10,
        writes in collection::vec(
            (0usize..1 << 16, collection::vec(any::<u8>(), 0..24)),
            0..24,
        ),
    ) {
        let writes: Vec<(usize, Msg)> =
            writes.iter().map(|(s, v)| (s % len, v.clone())).collect();
        let inline = outcomes::<MessagePlane<Msg>>(len, &writes);
        let arena = outcomes::<ArenaPlane<Msg>>(len, &writes);
        let hybrid = outcomes::<HybridPlane<Msg>>(len, &writes);
        prop_assert_eq!(&hybrid, &inline, "hybrid must match inline");
        prop_assert_eq!(&hybrid, &arena, "hybrid must match arena");
    }
}

/// The four encoded sizes that bracket the tag: 14 and 15 stay in the
/// cell, 16 and 17 spill.  (`Vec<u8>` of `k` items encodes to `1 + k`
/// bytes, so `k = 13..=16` dials the encoded size exactly.)
#[test]
fn the_tag_threshold_sits_between_15_and_16_encoded_bytes() {
    for (k, spills) in [(13usize, false), (14, false), (15, true), (16, true)] {
        let payload: Msg = vec![0xAB; k];
        assert_eq!(encoded_len(&payload), 1 + k);
        let mut plane: HybridPlane<Msg> = HybridPlane::new(2);
        let mut spare: Vec<Msg> = Vec::new();
        plane.store_ref(0, &payload).expect("free slot");
        plane
            .store(1, payload.clone(), &mut spare)
            .expect("free slot");
        let expected = if spills { 2 * (1 + k) } else { 0 };
        assert_eq!(
            plane.spill_bytes(),
            expected,
            "encoded size {} must {} the cell",
            1 + k,
            if spills { "spill past" } else { "stay inside" }
        );
        assert_eq!(plane.fetch(0, &mut spare).as_ref(), Some(&payload));
        assert_eq!(plane.fetch(1, &mut spare).as_ref(), Some(&payload));
        plane.reset_round();
    }
}
