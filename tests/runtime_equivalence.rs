//! Refactor-equivalence suite for the message-plane executors.
//!
//! The round executor was rewritten from push-based routing (per-round inbox
//! vectors, per-node hash sets, clone-on-delivery) to a pull-based,
//! double-buffered flat message plane, and then extended with a
//! shard-parallel engine ([`lma_sim::ShardedExecutor`]).  These tests pin
//! the contract of those rewrites:
//!
//! 1. **determinism** — running the same program set on the same seeded
//!    graph twice produces bit-identical outputs, [`RunStats`] and traces;
//! 2. **equivalence** — the plane executor and the preserved push-based
//!    reference executor ([`lma_sim::reference`]) agree exactly, under both
//!    LOCAL and CONGEST-audit configurations;
//! 3. **sharded equivalence** — the sharded executor produces bit-identical
//!    outputs, stats and traces to the sequential executor on ring, grid,
//!    G(n, p) and sparse random graphs at several shard counts, including
//!    every error path (malformed outbox, round limit, CONGEST enforcement);
//! 4. the `sync_boruvka` baseline (the most protocol-heavy consumer of the
//!    simulator) reproduces identical results across runs and models;
//! 5. **batch equivalence** — the lockstep fleet executor
//!    ([`lma_sim::BatchSim`]) at widths 1, 2 and 8 produces, lane for lane,
//!    bit-identical outputs, stats and traces to sequential runs of the same
//!    programs, on both plane backings, sequential and sharded, including
//!    the malformed-outbox error path (the failing lane alone reports the
//!    sequential run's exact error; every other lane completes).

use lma_baselines::{FloodCollectMst, NoAdviceMst, SyncBoruvkaMst};
use lma_graph::generators::{connected_random, gnp_connected, grid, ring};
use lma_graph::weights::WeightStrategy;
use lma_graph::{Port, WeightedGraph};
use lma_sim::{Backing, Engine, LocalView, Model, NodeAlgorithm, Outbox, RunError, RunResult, Sim};
use std::num::NonZeroUsize;

/// Flood the maximum identifier (the canonical LOCAL warm-up algorithm).
struct MaxIdFlood {
    best: u64,
    quiet_for: usize,
    done: bool,
}

impl MaxIdFlood {
    fn new() -> Self {
        Self {
            best: 0,
            quiet_for: 0,
            done: false,
        }
    }
}

impl NodeAlgorithm for MaxIdFlood {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, view: &LocalView) -> Outbox<u64> {
        self.best = view.id;
        (0..view.degree()).map(|p| (p, self.best)).collect()
    }

    fn round(&mut self, view: &LocalView, _round: usize, inbox: &[(Port, u64)]) -> Outbox<u64> {
        let before = self.best;
        for (_, id) in inbox {
            self.best = self.best.max(*id);
        }
        if self.best == before {
            self.quiet_for += 1;
        } else {
            self.quiet_for = 0;
        }
        if self.quiet_for >= view.n {
            self.done = true;
            return Vec::new();
        }
        (0..view.degree()).map(|p| (p, self.best)).collect()
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn output(&self) -> Option<u64> {
        self.done.then_some(self.best)
    }
}

/// A sparser, stateful program: forwards the running minimum over the
/// cheapest port only, so most slots stay empty most rounds (exercises the
/// plane's partial-occupancy path, unlike all-port flooding).
struct MinForward {
    best: u64,
    rounds_left: usize,
}

impl NodeAlgorithm for MinForward {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, view: &LocalView) -> Outbox<u64> {
        self.best = view.id;
        let cheapest = view.ports_by_weight()[0];
        vec![(cheapest, self.best)]
    }

    fn round(&mut self, view: &LocalView, _round: usize, inbox: &[(Port, u64)]) -> Outbox<u64> {
        for (_, v) in inbox {
            self.best = self.best.min(*v);
        }
        self.rounds_left = self.rounds_left.saturating_sub(1);
        if self.rounds_left == 0 {
            return Vec::new();
        }
        let cheapest = view.ports_by_weight()[0];
        vec![(cheapest, self.best)]
    }

    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }

    fn output(&self) -> Option<u64> {
        (self.rounds_left == 0).then_some(self.best)
    }
}

/// LOCAL and CONGEST-audit, each on both plane backings — every equivalence
/// test below therefore sweeps the arena plane against the push oracle and
/// the sequential executor for free.  Everything is expressed through the
/// [`Sim`] builder: engine variants derive from a base sim via
/// [`Sim::executor`].
fn sims(g: &WeightedGraph) -> Vec<Sim<'_>> {
    let mut sims = Vec::new();
    for backing in Backing::ALL {
        sims.push(Sim::on(g).trace(true).backing(backing));
        sims.push(
            Sim::on(g)
                .model(Model::congest_for(g.node_count()))
                .enforce_congest(false)
                .trace(true)
                .backing(backing),
        );
    }
    sims
}

fn assert_identical<O: PartialEq + std::fmt::Debug>(
    a: &RunResult<O>,
    b: &RunResult<O>,
    what: &str,
) {
    assert_eq!(a.outputs, b.outputs, "{what}: outputs diverged");
    assert_eq!(a.stats, b.stats, "{what}: stats diverged");
    assert_eq!(a.trace, b.trace, "{what}: trace diverged");
}

fn graphs() -> Vec<(&'static str, WeightedGraph)> {
    vec![
        (
            "ring",
            ring(31, WeightStrategy::DistinctRandom { seed: 11 }),
        ),
        (
            "grid",
            grid(6, 7, WeightStrategy::DistinctRandom { seed: 12 }),
        ),
        (
            "gnp",
            gnp_connected(64, 0.12, 14, WeightStrategy::DistinctRandom { seed: 14 }),
        ),
        (
            "sparse-random",
            connected_random(48, 120, 13, WeightStrategy::DistinctRandom { seed: 13 }),
        ),
    ]
}

/// The shard counts every sharded-equivalence test sweeps (≥ 2 shards each;
/// 5 does not divide any of the test graphs evenly, 8 forces tiny shards).
const SHARD_COUNTS: [usize; 3] = [2, 5, 8];

#[test]
fn max_id_flood_is_deterministic_across_runs() {
    for (name, g) in graphs() {
        for sim in sims(&g) {
            let a = sim
                .run(g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>())
                .unwrap();
            let b = sim
                .run(g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>())
                .unwrap();
            assert_identical(&a, &b, name);
            let want = g.nodes().map(|u| g.id(u)).max();
            assert!(
                a.outputs.iter().all(|o| *o == want),
                "{name}: wrong flood result"
            );
        }
    }
}

#[test]
fn pull_plane_matches_push_reference_exactly() {
    for (name, g) in graphs() {
        for sim in sims(&g) {
            let pull = sim
                .run(g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>())
                .unwrap();
            let push = sim
                .executor(Engine::Reference)
                .run(g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>())
                .unwrap();
            assert_identical(&pull, &push, name);
        }
    }
}

#[test]
fn sparse_traffic_matches_push_reference_exactly() {
    for (name, g) in graphs() {
        for sim in sims(&g) {
            let mk = || {
                g.nodes()
                    .map(|_| MinForward {
                        best: 0,
                        rounds_left: 40,
                    })
                    .collect::<Vec<_>>()
            };
            let pull = sim.run(mk()).unwrap();
            let push = sim.executor(Engine::Reference).run(mk()).unwrap();
            assert_identical(&pull, &push, name);
        }
    }
}

#[test]
fn sync_boruvka_reproduces_identical_runs_under_both_models() {
    let g = connected_random(40, 100, 21, WeightStrategy::DistinctRandom { seed: 21 });
    for sim in [
        Sim::on(&g),
        Sim::on(&g).model(Model::congest_for(g.node_count())),
    ] {
        let (out_a, stats_a) = SyncBoruvkaMst.run(&sim).unwrap();
        let (out_b, stats_b) = SyncBoruvkaMst.run(&sim).unwrap();
        assert_eq!(out_a, out_b, "sync-boruvka outputs must be reproducible");
        assert_eq!(stats_a, stats_b, "sync-boruvka stats must be reproducible");
        lma_mst::verify::verify_upward_outputs(&g, &out_a).unwrap();
    }
}

#[test]
fn trace_round_numbers_and_totals_are_consistent() {
    let g = ring(12, WeightStrategy::DistinctRandom { seed: 5 });
    let result = Sim::on(&g)
        .trace(true)
        .run(g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>())
        .unwrap();
    let trace = result.trace.unwrap();
    assert_eq!(trace.len() as u64, result.stats.total_messages);
    assert!(trace
        .iter()
        .all(|e| e.round >= 1 && e.round <= result.stats.rounds));
    assert!(trace
        .windows(2)
        .all(|w| (w[0].round, w[0].from, w[0].to) <= (w[1].round, w[1].from, w[1].to)));
}

/// A program with a planted bug: node `culprit` sends twice through port 0
/// in round `at_round` (round 0 = init).
struct DuplicatePort {
    me: usize,
    culprit: usize,
    at_round: usize,
    done: bool,
}

impl NodeAlgorithm for DuplicatePort {
    type Msg = u64;
    type Output = ();

    fn init(&mut self, view: &LocalView) -> Outbox<u64> {
        self.me = view.node;
        if self.me == self.culprit && self.at_round == 0 {
            return vec![(0, 1), (0, 2)];
        }
        (0..view.degree()).map(|p| (p, 0)).collect()
    }

    fn round(&mut self, view: &LocalView, round: usize, _: &[(Port, u64)]) -> Outbox<u64> {
        if self.me == self.culprit && round == self.at_round {
            return vec![(0, 1), (0, 2)];
        }
        if round > self.at_round + 2 {
            self.done = true;
            return Vec::new();
        }
        (0..view.degree()).map(|p| (p, 0)).collect()
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn output(&self) -> Option<()> {
        self.done.then_some(())
    }
}

fn shard_engine(threads: usize) -> Engine {
    Engine::Sharded(NonZeroUsize::new(threads).unwrap())
}

#[test]
fn sharded_matches_sequential_exactly_on_all_graph_families() {
    for (name, g) in graphs() {
        for sim in sims(&g) {
            let seq = sim
                .run(g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>())
                .unwrap();
            for shards in SHARD_COUNTS {
                let par = sim
                    .executor(shard_engine(shards))
                    .run(g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>())
                    .unwrap();
                assert_identical(&seq, &par, &format!("{name}/shards={shards}"));
            }
        }
    }
}

#[test]
fn sharded_matches_sequential_on_sparse_traffic() {
    for (name, g) in graphs() {
        for sim in sims(&g) {
            let mk = || {
                g.nodes()
                    .map(|_| MinForward {
                        best: 0,
                        rounds_left: 40,
                    })
                    .collect::<Vec<_>>()
            };
            let seq = sim.run(mk()).unwrap();
            for shards in SHARD_COUNTS {
                let par = sim.executor(shard_engine(shards)).run(mk()).unwrap();
                assert_identical(&seq, &par, &format!("{name}/shards={shards}"));
            }
        }
    }
}

#[test]
fn sim_threads_knob_dispatches_to_the_sharded_executor() {
    let g = grid(8, 8, WeightStrategy::DistinctRandom { seed: 3 });
    let seq = Sim::on(&g)
        .trace(true)
        .run(g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>())
        .unwrap();
    for threads in [1usize, 2, 4] {
        let via_knob = Sim::on(&g)
            .trace(true)
            .threads(threads)
            .run(g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>())
            .unwrap();
        assert_identical(&seq, &via_knob, &format!("threads={threads}"));
    }
}

#[test]
fn sharded_reports_the_same_malformed_outbox_error() {
    let g = ring(24, WeightStrategy::Unit);
    // The culprit in the middle of the node range lands in an interior
    // shard; plant the bug both at init and mid-run, and check it on both
    // plane backings (the arena detects duplicates through its own
    // occupancy set, so the error path is genuinely different code).
    for (culprit, at_round) in [(13usize, 0usize), (13, 2), (0, 1), (23, 3)] {
        let mk = || {
            g.nodes()
                .map(|_| DuplicatePort {
                    me: 0,
                    culprit,
                    at_round,
                    done: false,
                })
                .collect::<Vec<_>>()
        };
        let seq = Sim::on(&g).run(mk()).unwrap_err();
        assert!(matches!(seq, RunError::MalformedOutbox { .. }));
        for backing in Backing::ALL {
            let sim = Sim::on(&g).backing(backing);
            let seq_backed = sim.run(mk()).unwrap_err();
            assert_eq!(
                seq, seq_backed,
                "culprit {culprit} round {at_round} backing {backing:?}"
            );
            for shards in SHARD_COUNTS {
                let par = sim.executor(shard_engine(shards)).run(mk()).unwrap_err();
                assert_eq!(
                    seq, par,
                    "culprit {culprit} round {at_round} shards {shards} backing {backing:?}"
                );
            }
        }
    }
}

#[test]
fn sharded_reports_the_same_round_limit_error() {
    let g = ring(20, WeightStrategy::Unit);
    let sim = Sim::on(&g).round_limit(3);
    let mk = || g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>();
    let seq = sim.run(mk()).unwrap_err();
    for shards in SHARD_COUNTS {
        let par = sim.executor(shard_engine(shards)).run(mk()).unwrap_err();
        assert_eq!(seq, par, "shards {shards}");
    }
}

#[test]
fn sharded_reports_the_same_congest_violation_error() {
    let g = ring(20, WeightStrategy::Unit);
    let sim = Sim::on(&g)
        .model(Model::Congest { bits: 1 })
        .enforce_congest(true);
    let mk = || g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>();
    let seq = sim.run(mk()).unwrap_err();
    assert!(matches!(seq, RunError::CongestViolation { .. }));
    for shards in SHARD_COUNTS {
        let par = sim.executor(shard_engine(shards)).run(mk()).unwrap_err();
        assert_eq!(seq, par, "shards {shards}");
    }
}

/// The tentpole oracle of the arena refactor: for each LOCAL baseline, the
/// inline-backed plane, the arena-backed plane (sequential and sharded at
/// every shard count) and the push-based reference executor must produce
/// bit-identical outputs and stats.  `FloodCollectMst` is the variable-size
/// payload case the arena exists for; `SyncBoruvkaMst` is the most
/// protocol-heavy consumer of the simulator.
fn assert_baseline_backing_equivalence<B: NoAdviceMst>(baseline: B, g: &WeightedGraph) {
    let reference = baseline
        .run(&Sim::on(g).executor(Engine::Reference))
        .unwrap_or_else(|e| panic!("{}: push reference failed: {e}", baseline.name()));
    for backing in Backing::ALL {
        let sim = Sim::on(g).backing(backing);
        let seq = baseline
            .run(&sim.executor(Engine::Sequential))
            .unwrap_or_else(|e| panic!("{}: sequential failed: {e}", baseline.name()));
        assert_eq!(
            reference.0,
            seq.0,
            "{}: outputs diverged from push reference on {backing:?}",
            baseline.name()
        );
        assert_eq!(
            reference.1,
            seq.1,
            "{}: stats diverged from push reference on {backing:?}",
            baseline.name()
        );
        for shards in SHARD_COUNTS {
            let par = baseline
                .run(&sim.executor(shard_engine(shards)))
                .unwrap_or_else(|e| panic!("{}: sharded({shards}) failed: {e}", baseline.name()));
            assert_eq!(
                reference.0,
                par.0,
                "{}: outputs diverged on {backing:?} with {shards} shards",
                baseline.name()
            );
            assert_eq!(
                reference.1,
                par.1,
                "{}: stats diverged on {backing:?} with {shards} shards",
                baseline.name()
            );
        }
    }
}

#[test]
fn flood_collect_is_bit_identical_across_backings_shards_and_push() {
    let g = connected_random(26, 64, 41, WeightStrategy::DistinctRandom { seed: 41 });
    assert_baseline_backing_equivalence(FloodCollectMst, &g);
}

#[test]
fn sync_boruvka_is_bit_identical_across_backings_shards_and_push() {
    let g = connected_random(30, 75, 43, WeightStrategy::DistinctRandom { seed: 43 });
    assert_baseline_backing_equivalence(SyncBoruvkaMst, &g);
}

/// The batch widths every fleet-equivalence test sweeps (1 pins the
/// degenerate single-lane batch; 8 exercises multi-lane striping).
const BATCH_WIDTHS: [usize; 3] = [1, 2, 8];

#[test]
fn batched_fleets_match_sequential_lane_for_lane() {
    for (name, g) in graphs() {
        for sim in sims(&g) {
            let solo = sim
                .run(g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>())
                .unwrap();
            for lanes in BATCH_WIDTHS {
                for threads in [1usize, 3] {
                    let fleets = (0..lanes)
                        .map(|_| g.nodes().map(|_| MaxIdFlood::new()).collect::<Vec<_>>())
                        .collect();
                    let results = sim.threads(threads).batch(lanes).run(fleets).unwrap();
                    assert_eq!(results.len(), lanes);
                    for (lane, result) in results.into_iter().enumerate() {
                        assert_identical(
                            &solo,
                            &result.unwrap(),
                            &format!("{name}/W={lanes}/threads={threads}/lane={lane}"),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn batched_sparse_traffic_matches_sequential_lane_for_lane() {
    for (name, g) in graphs() {
        for sim in sims(&g) {
            let mk = || {
                g.nodes()
                    .map(|_| MinForward {
                        best: 0,
                        rounds_left: 40,
                    })
                    .collect::<Vec<_>>()
            };
            let solo = sim.run(mk()).unwrap();
            for lanes in BATCH_WIDTHS {
                let fleets = (0..lanes).map(|_| mk()).collect();
                let results = sim.batch(lanes).run(fleets).unwrap();
                for (lane, result) in results.into_iter().enumerate() {
                    assert_identical(
                        &solo,
                        &result.unwrap(),
                        &format!("{name}/W={lanes}/lane={lane}"),
                    );
                }
            }
        }
    }
}

#[test]
fn batched_lane_with_malformed_outbox_fails_alone() {
    let g = ring(24, WeightStrategy::Unit);
    // `usize::MAX` never matches a node, so that fleet runs clean; planting
    // the culprit in exactly one lane must reproduce the sequential error in
    // that lane — and only there.
    let mk = |culprit: usize| {
        g.nodes()
            .map(|_| DuplicatePort {
                me: 0,
                culprit,
                at_round: 2,
                done: false,
            })
            .collect::<Vec<_>>()
    };
    let solo_ok = Sim::on(&g).run(mk(usize::MAX)).unwrap();
    let solo_err = Sim::on(&g).run(mk(13)).unwrap_err();
    assert!(matches!(solo_err, RunError::MalformedOutbox { .. }));
    let lanes = 4;
    let rogue = 2;
    for backing in Backing::ALL {
        for threads in [1usize, 3] {
            let sim = Sim::on(&g).backing(backing).threads(threads);
            let fleets = (0..lanes)
                .map(|l| mk(if l == rogue { 13 } else { usize::MAX }))
                .collect();
            let results = sim.batch(lanes).run(fleets).unwrap();
            assert_eq!(results.len(), lanes);
            for (lane, result) in results.into_iter().enumerate() {
                let what = format!("backing {backing:?} threads {threads} lane {lane}");
                if lane == rogue {
                    assert_eq!(result.unwrap_err(), solo_err, "{what}");
                } else {
                    let clean =
                        result.unwrap_or_else(|e| panic!("{what}: a clean lane failed with {e}"));
                    assert_eq!(clean.outputs, solo_ok.outputs, "{what}: outputs diverged");
                    assert_eq!(clean.stats, solo_ok.stats, "{what}: stats diverged");
                }
            }
        }
    }
}

#[test]
fn sharded_sync_boruvka_matches_sequential() {
    let g = connected_random(60, 150, 31, WeightStrategy::DistinctRandom { seed: 31 });
    for threads in [2usize, 4] {
        let seq = SyncBoruvkaMst.run(&Sim::on(&g)).unwrap();
        let par = SyncBoruvkaMst.run(&Sim::on(&g).threads(threads)).unwrap();
        assert_eq!(seq.0, par.0, "sync-boruvka outputs diverged");
        assert_eq!(seq.1, par.1, "sync-boruvka stats diverged");
    }
}
