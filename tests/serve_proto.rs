//! Property suite for the serve wire protocol (vendored proptest), in the
//! mold of `wire_roundtrip`:
//!
//! 1. **round trip** — every request/response the encoder can produce
//!    decodes back to itself through *both* decoders: the panicking
//!    in-process [`WireReader`] path and the total
//!    [`Request::decode_checked`] / [`Response::decode_checked`] path, each
//!    consuming the payload exactly;
//! 2. **truncation totality** — every strict prefix of a valid encoding is
//!    a typed [`FrameError`], never a panic and never a bogus success (the
//!    codec has no self-delimiting value a prefix could terminate at);
//! 3. **fuzz totality** — arbitrary byte soup and single-byte corruptions
//!    of valid encodings always *return* from the checked decoders.  This
//!    is the property that lets the server run them on socket bytes: a
//!    malformed frame costs one `BAD_REQUEST` reply, not the process;
//! 4. **framing** — `read_frame ∘ write_frame = id`, clean EOF at a frame
//!    boundary is `Ok(None)`, and streams cut mid-frame are io errors.

use lma_serve::proto::{
    read_frame, write_frame, ErrorReport, FrameError, Request, RequestBody, Response, ResponseBody,
    RunReport, RunSpec, StatsReport, MAX_FRAME,
};
use lma_sim::wire::{Wire, WireReader};
use proptest::prelude::*;

/// Arbitrary bytes → always-valid UTF-8 (lossy), exercising multi-byte
/// characters and the empty string.
fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

fn spec(words: &[Vec<u8>], nums: (u64, u64, u64, u64), opts: (u64, u64)) -> RunSpec {
    RunSpec {
        workload: text(words.first().map_or(&[][..], Vec::as_slice)),
        family: text(words.get(1).map_or(&[][..], Vec::as_slice)),
        n: nums.0 as usize,
        seed: nums.1,
        backing: text(words.get(2).map_or(&[][..], Vec::as_slice)),
        threads: nums.2 as usize,
        round_limit: (opts.0 & 1 == 1).then_some(opts.0 >> 1),
        deadline_ms: (opts.1 & 1 == 1).then_some(opts.1 >> 1),
    }
}

fn request(tag: u64, id: u64, body_spec: RunSpec) -> Request {
    let body = match tag % 4 {
        0 => RequestBody::Ping,
        1 => RequestBody::Run(body_spec),
        2 => RequestBody::Stats,
        _ => RequestBody::Shutdown,
    };
    Request { id, body }
}

fn response(tag: u64, id: u64, words: &[Vec<u8>], nums: &[u64]) -> Response {
    let at = |i: usize| nums.get(i).copied().unwrap_or(0);
    let body = match tag % 5 {
        0 => ResponseBody::Pong,
        1 => ResponseBody::Done(RunReport {
            digest: text(words.first().map_or(&[][..], Vec::as_slice)),
            rounds: at(0),
            messages: at(1),
            bits: at(2),
            queue_ns: at(3),
            run_ns: at(4),
            lanes: at(5) as u32,
        }),
        2 => ResponseBody::Failed(ErrorReport {
            code: at(0) as u8,
            message: text(words.first().map_or(&[][..], Vec::as_slice)),
        }),
        3 => ResponseBody::Stats(StatsReport {
            served: at(0),
            failed: at(1),
            coalesced: at(2),
            graph_hits: at(3),
            graph_misses: at(4),
            partition_hits: at(5),
            partition_misses: at(6),
            oracle_hits: at(7),
            oracle_misses: at(8),
            batch_widths: nums
                .iter()
                .map(|&x| ((x >> 32) as u32, x & 0xffff_ffff))
                .collect(),
            queue_p50_ns: at(9),
            queue_p99_ns: at(10),
            total_p50_ns: at(11),
            total_p99_ns: at(12),
        }),
        _ => ResponseBody::Bye(at(0)),
    };
    Response { id, body }
}

/// Both decoders agree with the encoder and consume the payload exactly.
fn pin_request(value: &Request) {
    let bytes = value.to_bytes();
    let mut reader = WireReader::new(&bytes);
    assert_eq!(&Request::decode(&mut reader), value, "in-process decode");
    assert!(
        reader.is_exhausted(),
        "in-process decode must drain the span"
    );
    assert_eq!(
        Request::decode_checked(&bytes).as_ref(),
        Ok(value),
        "checked decode"
    );
    for cut in 0..bytes.len() {
        let err =
            Request::decode_checked(&bytes[..cut]).expect_err("a strict prefix must never decode");
        assert!(!err.to_string().is_empty());
    }
}

fn pin_response(value: &Response) {
    let bytes = value.to_bytes();
    let mut reader = WireReader::new(&bytes);
    assert_eq!(&Response::decode(&mut reader), value, "in-process decode");
    assert!(
        reader.is_exhausted(),
        "in-process decode must drain the span"
    );
    assert_eq!(
        Response::decode_checked(&bytes).as_ref(),
        Ok(value),
        "checked decode"
    );
    for cut in 0..bytes.len() {
        let err =
            Response::decode_checked(&bytes[..cut]).expect_err("a strict prefix must never decode");
        assert!(!err.to_string().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_round_trip_and_truncate_to_typed_errors(
        tag in any::<u64>(),
        id in any::<u64>(),
        words in collection::vec(collection::vec(any::<u8>(), 0..24), 0..4),
        nums in ((any::<u64>(), any::<u64>()), (0u64..1 << 32, any::<u64>())),
        opts in (any::<u64>(), any::<u64>()),
    ) {
        let ((a, b), (c, d)) = nums;
        pin_request(&request(tag, id, spec(&words, (a, b, c, d), opts)));
    }

    #[test]
    fn responses_round_trip_and_truncate_to_typed_errors(
        tag in any::<u64>(),
        id in any::<u64>(),
        words in collection::vec(collection::vec(any::<u8>(), 0..48), 0..3),
        nums in collection::vec(any::<u64>(), 0..14),
    ) {
        pin_response(&response(tag, id, &words, &nums));
    }

    /// Arbitrary byte soup: the checked decoders must *return* — any
    /// `Ok` is fine, any `Err` is fine, a panic is the only failure.
    #[test]
    fn arbitrary_bytes_decode_totally(
        bytes in collection::vec(any::<u8>(), 0..256),
    ) {
        if let Ok(decoded) = Request::decode_checked(&bytes) {
            // A success must at least be self-consistent: the decoded value
            // survives its own encode → decode round trip.  (Byte equality
            // with the input is too strong — over-long varints are
            // non-canonical spellings of the same value; see the dedicated
            // case below.)
            prop_assert_eq!(Request::decode_checked(&decoded.to_bytes()), Ok(decoded));
        }
        if let Ok(decoded) = Response::decode_checked(&bytes) {
            prop_assert_eq!(Response::decode_checked(&decoded.to_bytes()), Ok(decoded));
        }
    }

    /// Single-byte corruption of a valid encoding: still total, and when
    /// the result decodes it must survive its own round trip.
    #[test]
    fn corrupted_encodings_decode_totally(
        tag in any::<u64>(),
        id in any::<u64>(),
        words in collection::vec(collection::vec(any::<u8>(), 0..16), 0..4),
        nums in ((any::<u64>(), any::<u64>()), (0u64..1 << 32, any::<u64>())),
        opts in (any::<u64>(), any::<u64>()),
        flip in (0usize..1 << 16, 1u64..256),
    ) {
        let ((a, b), (c, d)) = nums;
        let mut bytes = request(tag, id, spec(&words, (a, b, c, d), opts)).to_bytes();
        let at = flip.0 % bytes.len();
        bytes[at] ^= flip.1 as u8;
        if let Ok(decoded) = Request::decode_checked(&bytes) {
            prop_assert_eq!(Request::decode_checked(&decoded.to_bytes()), Ok(decoded));
        }
    }

    #[test]
    fn frames_round_trip_and_truncations_are_errors(
        payload in collection::vec(any::<u8>(), 0..512),
        cut_seed in any::<u64>(),
    ) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        prop_assert_eq!(framed.len(), 4 + payload.len());
        let mut cursor = std::io::Cursor::new(framed.clone());
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), Some(payload.clone()));
        prop_assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF is None");
        // Any strict prefix of the frame stream: Ok(None) only at offset 0,
        // an io error everywhere else — never a panic, never a short read.
        let cut = (cut_seed as usize) % framed.len();
        let mut cursor = std::io::Cursor::new(framed[..cut].to_vec());
        match read_frame(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "mid-frame EOF must not look clean"),
            Ok(Some(_)) => prop_assert!(false, "a cut frame must not decode"),
            Err(_) => {}
        }
    }
}

/// The varint caveat called out inline above, pinned as its own case: the
/// checked decoder accepts non-canonical (over-long) varints, so two
/// different byte strings may decode to one value — round-trip agreement
/// is on *values*, not bytes.
#[test]
fn non_canonical_varints_decode_to_the_same_value() {
    // id=0 as the canonical single byte...
    let canonical = Request {
        id: 0,
        body: RequestBody::Ping,
    };
    assert_eq!(
        Request::decode_checked(&canonical.to_bytes()),
        Ok(canonical.clone())
    );
    // ...and as the over-long two-byte form 0x80 0x00.
    let overlong = vec![0x80, 0x00, 0];
    assert_eq!(Request::decode_checked(&overlong), Ok(canonical));
}

/// The 1 MiB frame cap is enforced on both sides of the framing layer.
#[test]
fn frame_cap_is_enforced_both_ways() {
    let big = vec![0u8; MAX_FRAME + 1];
    assert!(write_frame(&mut Vec::new(), &big).is_err());
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&u32::try_from(MAX_FRAME + 1).unwrap().to_le_bytes());
    hostile.extend_from_slice(&[0u8; 16]);
    let err = read_frame(&mut std::io::Cursor::new(hostile)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

/// The hostile-length cap: a claimed 4 GiB string inside a 3-byte payload
/// is a typed `LengthOverrun` before any allocation could happen.
#[test]
fn hostile_claimed_lengths_are_typed_errors() {
    let mut bytes = vec![1, 1]; // id=1, tag=Run
                                // workload string length = u32::MAX as a varint
    let mut x = u64::from(u32::MAX);
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            bytes.push(byte);
            break;
        }
        bytes.push(byte | 0x80);
    }
    match Request::decode_checked(&bytes) {
        Err(FrameError::LengthOverrun { claimed, remaining }) => {
            assert_eq!(claimed, u64::from(u32::MAX));
            assert_eq!(remaining, 0);
        }
        other => panic!("expected LengthOverrun, got {other:?}"),
    }
}
