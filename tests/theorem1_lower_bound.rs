//! Integration tests for Theorem 1: the lower-bound family, the certified
//! counting bound, and the adversary against under-budgeted zero-round
//! schemes.

use lma_advice::lowerbound::{
    attack_scheme_at, certified_node_bits, certified_report, pigeonhole_witness, truncated_trivial,
};
use lma_advice::{evaluate_scheme, TrivialScheme};
use lma_graph::generators::lowerbound::{
    expected_mst_pairs, lowerbound_family_at, lowerbound_gn, LowerBoundParams,
};
use lma_mst::boruvka::{BoruvkaConfig, TieBreak};
use lma_mst::kruskal::kruskal_mst;
use lma_sim::Sim;

#[test]
fn gn_has_the_unique_spine_mst_for_all_band_assignments() {
    for n in [4usize, 6, 10, 16] {
        for params in [LowerBoundParams::new(n), LowerBoundParams::adversarial(n)] {
            let g = lowerbound_gn(&params);
            let mst = kruskal_mst(&g).unwrap();
            let expected: std::collections::BTreeSet<(usize, usize)> =
                expected_mst_pairs(n).into_iter().collect();
            let got: std::collections::BTreeSet<(usize, usize)> =
                mst.iter().map(|&e| g.edge(e).endpoints_sorted()).collect();
            assert_eq!(got, expected, "n={n}");
        }
    }
}

#[test]
fn certified_average_grows_logarithmically() {
    let values: Vec<f64> = [16usize, 64, 256, 1024]
        .iter()
        .map(|&n| certified_report(n).average_bits)
        .collect();
    // Roughly +1 bit every time n quadruples (the bound is ~log2(n)/2).
    for w in values.windows(2) {
        assert!(w[1] > w[0] + 0.7, "{values:?}");
    }
    // And the average never exceeds the trivial scheme's ceil(log(2n)) bits.
    assert!(values[3] <= 11.0);
}

#[test]
fn trivial_scheme_is_tight_against_the_adversary() {
    // Theorem 1 says the trivial (ceil(log n), 0) scheme is optimal: with its
    // full budget it survives every family; certified bounds say nothing
    // smaller can.
    for i in [2usize, 4, 8] {
        let full = truncated_trivial(64);
        assert!(attack_scheme_at(&full, 12, i).unwrap().is_none(), "i={i}");
    }
}

#[test]
fn every_starved_budget_is_falsified() {
    let n = 18;
    let i = 2;
    let needed = certified_node_bits(n, i);
    assert!(needed >= 4);
    for m in 0..needed {
        let starved = truncated_trivial(m);
        let witness = attack_scheme_at(&starved, n, i).unwrap();
        assert!(witness.is_some(), "budget {m} < {needed} must be falsified");
    }
}

#[test]
fn pigeonhole_pairs_exist_exactly_when_the_budget_is_too_small() {
    let family = lowerbound_family_at(18, 2);
    let needed = certified_node_bits(18, 2);
    let starved = truncated_trivial(needed - 1);
    assert!(pigeonhole_witness(&starved, &family).unwrap().is_some());
    let full = truncated_trivial(64);
    assert!(pigeonhole_witness(&full, &family).unwrap().is_none());
}

#[test]
fn trivial_scheme_average_on_gn_is_close_to_log_n() {
    // The certified lower bound and the trivial scheme's measured average
    // bracket each other within a small factor on G_n: Theorem 1's claim that
    // the trivial scheme is average-optimal at zero rounds.
    for n in [16usize, 64, 256] {
        let g = lowerbound_gn(&LowerBoundParams::new(n));
        let scheme = TrivialScheme {
            boruvka: BoruvkaConfig {
                root: None,
                tie_break: TieBreak::CanonicalGlobal,
            },
        };
        let eval = evaluate_scheme(&scheme, &Sim::on(&g)).unwrap();
        let lower = certified_report(n).average_bits;
        let measured = eval.advice.avg_bits;
        assert!(
            measured + 1e-9 >= lower,
            "n={n}: measured average {measured} below certified bound {lower}"
        );
        assert!(
            measured <= 4.0 * lower + 4.0,
            "n={n}: measured average {measured} unexpectedly far above the bound {lower}"
        );
    }
}
