//! Integration tests comparing the advice schemes against the no-advice
//! baselines — the quantitative content of the paper's headline claim.

use lma_advice::{evaluate_scheme, ConstantScheme};
use lma_baselines::{FloodCollectMst, NoAdviceMst, SyncBoruvkaMst};
use lma_graph::generators::{connected_random, lollipop, Family};
use lma_graph::weights::WeightStrategy;
use lma_mst::kruskal::mst_weight;
use lma_mst::verify::verify_upward_outputs;
use lma_sim::Sim;

#[test]
fn all_algorithms_agree_on_the_mst_weight() {
    let g = connected_random(40, 110, 4, WeightStrategy::DistinctRandom { seed: 4 });
    let optimal = mst_weight(&g).unwrap();

    let eval = evaluate_scheme(&ConstantScheme::default(), &Sim::on(&g)).unwrap();
    assert_eq!(g.weight_of(&eval.tree.edges), optimal);

    for baseline in [
        Box::new(SyncBoruvkaMst) as Box<dyn NoAdviceMst>,
        Box::new(FloodCollectMst) as Box<dyn NoAdviceMst>,
    ] {
        let (outputs, _) = baseline.run(&Sim::on(&g)).unwrap();
        let tree = verify_upward_outputs(&g, &outputs).unwrap();
        assert_eq!(g.weight_of(&tree.edges), optimal, "{}", baseline.name());
    }
}

#[test]
fn constant_advice_scheme_is_much_faster_than_the_no_advice_baseline() {
    // The "exponential decrease of the distributed computation time" claim:
    // O(log n) rounds with advice vs Θ(n log n) rounds without.
    for n in [48usize, 96, 192] {
        let g = connected_random(n, 3 * n, 6, WeightStrategy::DistinctRandom { seed: 6 });
        let with_advice = evaluate_scheme(&ConstantScheme::default(), &Sim::on(&g))
            .unwrap()
            .run
            .rounds;
        let (outputs, stats) = SyncBoruvkaMst.run(&Sim::on(&g)).unwrap();
        verify_upward_outputs(&g, &outputs).unwrap();
        assert!(
            stats.rounds > 4 * with_advice,
            "n={n}: baseline {} rounds vs scheme {} rounds",
            stats.rounds,
            with_advice
        );
    }
}

#[test]
fn the_gap_grows_with_n() {
    let ratio = |n: usize| {
        let g = connected_random(n, 3 * n, 8, WeightStrategy::DistinctRandom { seed: 8 });
        let with_advice = evaluate_scheme(&ConstantScheme::default(), &Sim::on(&g))
            .unwrap()
            .run
            .rounds as f64;
        let (_, stats) = SyncBoruvkaMst.run(&Sim::on(&g)).unwrap();
        stats.rounds as f64 / with_advice
    };
    let small = ratio(32);
    let large = ratio(256);
    assert!(
        large > 2.0 * small,
        "the advantage of advice must grow with n: ratio {small:.1} -> {large:.1}"
    );
}

#[test]
fn flood_collect_wins_on_rounds_but_loses_on_message_size() {
    // The LOCAL-model (0, D+1) scheme is fast on low-diameter graphs but its
    // messages carry the whole topology; the constant-advice scheme stays
    // polylogarithmic on both axes.
    let g = Family::DenseRandom.instantiate(96, WeightStrategy::DistinctRandom { seed: 10 }, 10);
    let (outputs, flood_stats) = FloodCollectMst.run(&Sim::on(&g)).unwrap();
    verify_upward_outputs(&g, &outputs).unwrap();
    let scheme_eval = evaluate_scheme(&ConstantScheme::default(), &Sim::on(&g)).unwrap();

    assert!(flood_stats.rounds <= scheme_eval.run.rounds);
    assert!(
        flood_stats.max_message_bits > 20 * scheme_eval.run.max_message_bits,
        "flooding messages ({} bits) must dwarf the scheme's ({} bits)",
        flood_stats.max_message_bits,
        scheme_eval.run.max_message_bits
    );
}

#[test]
fn baselines_handle_high_diameter_families() {
    let g = lollipop(40, WeightStrategy::DistinctRandom { seed: 12 });
    for baseline in [
        Box::new(SyncBoruvkaMst) as Box<dyn NoAdviceMst>,
        Box::new(FloodCollectMst) as Box<dyn NoAdviceMst>,
    ] {
        let (outputs, stats) = baseline.run(&Sim::on(&g)).unwrap();
        verify_upward_outputs(&g, &outputs).unwrap();
        assert!(stats.rounds >= g.diameter(), "{}", baseline.name());
    }
}
