//! Integration tests for Theorem 2: one round, constant average advice.

use lma_advice::{evaluate_scheme, AdvisingScheme, OneRoundScheme, TrivialScheme};
use lma_graph::generators::{connected_random, Family};
use lma_graph::weights::WeightStrategy;
use lma_sim::{Model, Sim};

#[test]
fn exactly_one_round_on_every_family() {
    let scheme = OneRoundScheme::default();
    for family in Family::ALL {
        let g = family.instantiate(36, WeightStrategy::DistinctRandom { seed: 2 }, 2);
        let eval = evaluate_scheme(&scheme, &Sim::on(&g)).unwrap();
        assert_eq!(eval.run.rounds, 1, "family {}", family.name());
    }
}

#[test]
fn average_advice_is_bounded_by_the_analytic_constant_across_sizes() {
    let scheme = OneRoundScheme::default();
    for n in [32usize, 128, 512, 2048] {
        let g = connected_random(n, 3 * n, 77, WeightStrategy::DistinctRandom { seed: 77 });
        let eval = evaluate_scheme(&scheme, &Sim::on(&g)).unwrap();
        assert!(
            eval.advice.avg_bits <= OneRoundScheme::ANALYTIC_AVERAGE_BOUND,
            "n={n}: {}",
            eval.advice.avg_bits
        );
    }
}

#[test]
fn theorem1_vs_theorem2_one_round_beats_zero_rounds_on_average() {
    // The pair of results the paper contrasts: at zero rounds the average is
    // Ω(log n) (trivial scheme on a graph whose degrees grow with n); at one
    // round it is O(1).  The complete graph makes the contrast sharp: every
    // node's parent-edge rank needs ⌈log(n−1)⌉ bits, while Borůvka converges
    // in a couple of phases so few nodes ever receive one-round advice.
    let n = 300;
    let g = lma_graph::generators::complete(n, WeightStrategy::DistinctRandom { seed: 3 });
    let zero = evaluate_scheme(&TrivialScheme::default(), &Sim::on(&g)).unwrap();
    let one = evaluate_scheme(&OneRoundScheme::default(), &Sim::on(&g)).unwrap();
    assert_eq!(zero.run.rounds, 0);
    assert_eq!(one.run.rounds, 1);
    assert!(
        zero.advice.avg_bits > one.advice.avg_bits + 2.0,
        "zero-round average {} should clearly exceed one-round average {}",
        zero.advice.avg_bits,
        one.advice.avg_bits
    );
}

#[test]
fn one_round_scheme_fits_congest() {
    let n = 256;
    let g = connected_random(n, 4 * n, 5, WeightStrategy::DistinctRandom { seed: 5 });
    let scheme = OneRoundScheme::default();
    let sim = Sim::on(&g)
        .model(Model::congest_for(n))
        .enforce_congest(true);
    let eval = evaluate_scheme(&scheme, &sim).unwrap();
    assert_eq!(eval.run.congest_violations, 0);
    assert!(eval.run.max_message_bits <= 1);
}

#[test]
fn max_advice_grows_no_faster_than_log_squared() {
    let scheme = OneRoundScheme::default();
    let mut maxima = Vec::new();
    for n in [64usize, 256, 1024] {
        let g = connected_random(n, 3 * n, 9, WeightStrategy::DistinctRandom { seed: 9 });
        let eval = evaluate_scheme(&scheme, &Sim::on(&g)).unwrap();
        let p = lma_graph::graph::ceil_log2(n) as usize;
        assert!(eval.advice.max_bits <= p * (p + 3), "n={n}");
        maxima.push(eval.advice.max_bits);
    }
    // Growth from n=64 to n=1024 stays well below linear.
    assert!(maxima[2] < 8 * maxima[0].max(1));
}

#[test]
fn claims_are_reported_consistently() {
    let scheme = OneRoundScheme::default();
    assert_eq!(scheme.claimed_rounds(1000), Some(1));
    let m = scheme.claimed_max_bits(1024).unwrap();
    assert_eq!(m, 10 * 13);
}
