//! Cross-crate end-to-end tests: every advising scheme, on every graph
//! family, produces a verified rooted MST within its claimed (m, t) bounds.

use lma_advice::{
    evaluate_scheme, AdvisingScheme, ConstantScheme, ConstantVariant, OneRoundScheme, TrivialScheme,
};
use lma_graph::generators::Family;
use lma_graph::weights::WeightStrategy;
use lma_mst::kruskal::mst_weight;
use lma_sim::Sim;

fn all_schemes() -> Vec<Box<dyn AdvisingScheme>> {
    vec![
        Box::new(TrivialScheme::default()),
        Box::new(OneRoundScheme::default()),
        Box::new(ConstantScheme::default()),
        Box::new(ConstantScheme {
            variant: ConstantVariant::Level,
            ..ConstantScheme::default()
        }),
    ]
}

#[test]
fn every_scheme_solves_every_family() {
    for family in Family::ALL {
        for n in [16usize, 40] {
            let g = family.instantiate(n, WeightStrategy::DistinctRandom { seed: 1 }, 1);
            let optimal = mst_weight(&g).unwrap();
            for scheme in all_schemes() {
                let eval = evaluate_scheme(scheme.as_ref(), &Sim::on(&g)).unwrap_or_else(|e| {
                    panic!("{} failed on {} (n={n}): {e}", scheme.name(), family.name())
                });
                assert_eq!(
                    g.weight_of(&eval.tree.edges),
                    optimal,
                    "{} returned a non-minimum tree on {}",
                    scheme.name(),
                    family.name()
                );
                assert!(
                    eval.within_claims(scheme.as_ref(), g.node_count()),
                    "{} exceeded its claimed bounds on {}: advice {:?}, rounds {}",
                    scheme.name(),
                    family.name(),
                    eval.advice,
                    eval.run.rounds
                );
            }
        }
    }
}

#[test]
fn schemes_agree_on_the_same_rooted_tree_when_rooted_identically() {
    let g = Family::SparseRandom.instantiate(60, WeightStrategy::DistinctRandom { seed: 5 }, 5);
    let root = 7;
    let schemes: Vec<Box<dyn AdvisingScheme>> = vec![
        Box::new(TrivialScheme::rooted_at(root)),
        Box::new(OneRoundScheme::rooted_at(root)),
        Box::new(ConstantScheme::rooted_at(root)),
    ];
    let mut trees = Vec::new();
    for scheme in &schemes {
        let eval = evaluate_scheme(scheme.as_ref(), &Sim::on(&g)).unwrap();
        assert_eq!(eval.tree.root, root);
        let mut edges = eval.tree.edges.clone();
        edges.sort_unstable();
        trees.push(edges);
    }
    // Distinct weights => unique MST => all schemes must return the same tree.
    assert!(trees.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn all_results_are_deterministic_across_repeated_runs() {
    let g = Family::Grid.instantiate(49, WeightStrategy::DistinctRandom { seed: 3 }, 3);
    let scheme = ConstantScheme::default();
    let a = evaluate_scheme(&scheme, &Sim::on(&g)).unwrap();
    let b = evaluate_scheme(&scheme, &Sim::on(&g)).unwrap();
    assert_eq!(a.advice.max_bits, b.advice.max_bits);
    assert_eq!(a.advice.total_bits, b.advice.total_bits);
    assert_eq!(a.run.rounds, b.run.rounds);
    assert_eq!(a.tree.edges, b.tree.edges);
}

#[test]
fn advice_size_ordering_matches_the_paper() {
    // On dense graphs the trivial scheme's maximum advice grows with n
    // (it is ⌈log deg⌉ ≈ ⌈log n⌉ bits), while the constant scheme's maximum
    // stays pinned at its small constant; the round ordering is the inverse.
    let mut trivial_max = Vec::new();
    let mut constant_max = Vec::new();
    for n in [48usize, 192] {
        let g = Family::DenseRandom.instantiate(n, WeightStrategy::DistinctRandom { seed: 8 }, 8);
        let trivial = evaluate_scheme(&TrivialScheme::default(), &Sim::on(&g)).unwrap();
        let constant = evaluate_scheme(&ConstantScheme::default(), &Sim::on(&g)).unwrap();
        assert_eq!(trivial.run.rounds, 0);
        assert!(constant.run.rounds > 1);
        trivial_max.push(trivial.advice.max_bits);
        constant_max.push(constant.advice.max_bits);
    }
    assert!(
        trivial_max[1] > trivial_max[0],
        "trivial max must grow with n: {trivial_max:?}"
    );
    assert!(
        constant_max.iter().all(|&m| m <= 14),
        "constant max must stay constant: {constant_max:?}"
    );
    assert!(
        constant_max[1] <= constant_max[0] + 1,
        "constant max must not grow with n: {constant_max:?}"
    );
}
