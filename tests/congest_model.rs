//! Integration tests for the communication-model accounting: message sizes,
//! CONGEST budgets and violations, as claimed in §1 of the paper.

use lma_advice::{AdvisingScheme, ConstantScheme, OneRoundScheme, TrivialScheme};
use lma_baselines::{FloodCollectMst, NoAdviceMst};
use lma_graph::generators::connected_random;
use lma_graph::weights::WeightStrategy;
use lma_mst::verify::verify_upward_outputs;
use lma_sim::{Model, Sim};

fn graph(n: usize) -> lma_graph::WeightedGraph {
    connected_random(
        n,
        4 * n,
        0xC0 + n as u64,
        WeightStrategy::DistinctRandom { seed: 0xC0 },
    )
}

#[test]
fn trivial_scheme_sends_nothing() {
    let g = graph(64);
    let scheme = TrivialScheme::default();
    let advice = scheme.advise(&g).unwrap();
    let outcome = scheme.decode(&Sim::on(&g), &advice).unwrap();
    assert_eq!(outcome.stats.total_messages, 0);
    assert_eq!(outcome.stats.total_bits, 0);
    assert_eq!(outcome.stats.max_message_bits, 0);
}

#[test]
fn one_round_scheme_sends_single_bit_messages_under_enforced_congest() {
    let g = graph(128);
    let scheme = OneRoundScheme::default();
    let sim = Sim::on(&g)
        .model(Model::congest_for(128))
        .enforce_congest(true);
    let advice = scheme.advise(&g).unwrap();
    let outcome = scheme.decode(&sim, &advice).unwrap();
    verify_upward_outputs(&g, &outcome.outputs).unwrap();
    assert!(outcome.stats.max_message_bits <= 1);
    assert_eq!(outcome.stats.congest_violations, 0);
}

#[test]
fn constant_scheme_messages_are_polylogarithmic() {
    // The structured convergecast reports of the Theorem 3 decoder hold
    // O(log n) entries of O(1) bits plus a final-phase report of O(log n)
    // single-bit entries: measure and bound by c·log²n.
    for n in [128usize, 512] {
        let g = graph(n);
        let scheme = ConstantScheme::default();
        let advice = scheme.advise(&g).unwrap();
        let outcome = scheme.decode(&Sim::on(&g), &advice).unwrap();
        verify_upward_outputs(&g, &outcome.outputs).unwrap();
        let logn = lma_graph::graph::ceil_log2(n) as usize;
        assert!(
            outcome.stats.max_message_bits <= 40 * logn * logn,
            "n={n}: {} bits",
            outcome.stats.max_message_bits
        );
        // And they do NOT grow linearly with n.
        assert!(outcome.stats.max_message_bits < n);
    }
}

#[test]
fn per_round_maxima_are_recorded_for_every_round() {
    let g = graph(96);
    let scheme = ConstantScheme::default();
    let advice = scheme.advise(&g).unwrap();
    let outcome = scheme.decode(&Sim::on(&g), &advice).unwrap();
    assert_eq!(outcome.stats.per_round_max_bits.len(), outcome.stats.rounds);
    assert_eq!(
        outcome.stats.max_message_bits,
        outcome
            .stats
            .per_round_max_bits
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    );
}

#[test]
fn flooding_baseline_violates_congest_as_expected() {
    let g = graph(96);
    let sim = Sim::on(&g).model(Model::congest_for(96));
    let (outputs, stats) = FloodCollectMst.run(&sim).unwrap();
    verify_upward_outputs(&g, &outputs).unwrap();
    assert!(stats.congest_violations > 0);
    assert!(stats.max_message_bits > Model::congest_for(96).budget().unwrap());
}

#[test]
fn congest_enforcement_aborts_the_flooding_baseline() {
    let g = graph(64);
    let sim = Sim::on(&g)
        .model(Model::congest_for(64))
        .enforce_congest(true);
    assert!(FloodCollectMst.run(&sim).is_err());
}
