//! Property-based tests for the extension layers: the advice-vs-time
//! tradeoff scheme and the verification labels, on arbitrary random inputs.

use lma_advice::constant::schedule::{log_log_n, log_n};
use lma_advice::{evaluate_scheme, TradeoffScheme};
use lma_graph::generators::{connected_random, random_tree};
use lma_graph::weights::WeightStrategy;
use lma_graph::WeightedGraph;
use lma_labeling::faults::FaultPlan;
use lma_labeling::{CentroidDecomposition, MstCertificate, SpanningProof};
use lma_mst::kruskal_mst;
use lma_mst::verify::verify_upward_outputs;
use lma_mst::RootedTree;
use lma_sim::Sim;
use proptest::prelude::*;

fn mst_tree(g: &WeightedGraph, root: usize) -> RootedTree {
    RootedTree::from_edges(g, root, &kruskal_mst(g).unwrap()).unwrap()
}

/// Explicit path walk, used as the reference for the centroid summaries.
fn path_max_reference(g: &WeightedGraph, tree: &RootedTree, u: usize, v: usize) -> u64 {
    let (mut a, mut b) = (u, v);
    let mut best = 0;
    while tree.depth[a] > tree.depth[b] {
        best = best.max(g.weight(tree.parent_edge[a].unwrap()));
        a = tree.parent[a].unwrap();
    }
    while tree.depth[b] > tree.depth[a] {
        best = best.max(g.weight(tree.parent_edge[b].unwrap()));
        b = tree.parent[b].unwrap();
    }
    while a != b {
        best = best.max(g.weight(tree.parent_edge[a].unwrap()));
        best = best.max(g.weight(tree.parent_edge[b].unwrap()));
        a = tree.parent[a].unwrap();
        b = tree.parent[b].unwrap();
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The tradeoff scheme produces a verified MST within its claimed
    /// (m, t) for every cutoff on arbitrary distinct-weight random graphs.
    #[test]
    fn tradeoff_scheme_holds_its_claims(n in 4usize..80, extra in 0usize..100, seed in 0u64..500) {
        let g = connected_random(n, n - 1 + extra, seed, WeightStrategy::DistinctRandom { seed });
        for cutoff in 0..=log_log_n(n) {
            let scheme = TradeoffScheme::with_cutoff(cutoff);
            let eval = evaluate_scheme(&scheme, &Sim::on(&g)).unwrap();
            prop_assert!(eval.within_claims(&scheme, n), "cutoff {} broke its claims", cutoff);
            prop_assert_eq!(eval.tree.edges.len(), n - 1);
        }
    }

    /// The frontier endpoints behave as designed: cutoff 0 is a zero-round
    /// ⌈log n⌉-bit scheme, the full cutoff keeps the maximum advice constant.
    #[test]
    fn tradeoff_endpoints(n in 8usize..120, seed in 0u64..300) {
        let g = connected_random(n, 3 * n, seed, WeightStrategy::DistinctRandom { seed });
        let zero = evaluate_scheme(&TradeoffScheme::with_cutoff(0), &Sim::on(&g)).unwrap();
        prop_assert_eq!(zero.run.rounds, 0);
        prop_assert_eq!(zero.advice.max_bits, log_n(n));
        let full = evaluate_scheme(&TradeoffScheme::default(), &Sim::on(&g)).unwrap();
        prop_assert!(full.advice.max_bits <= 14);
    }

    /// The centroid decomposition reports the exact maximum edge weight on
    /// the tree path between any two nodes, for arbitrary random trees with
    /// arbitrary (possibly duplicated) weights.
    #[test]
    fn centroid_path_maxima_are_exact(n in 2usize..60, seed in 0u64..500, max_w in 1u64..30) {
        let g = random_tree(n, seed, WeightStrategy::UniformRandom { seed, max: max_w });
        let tree = mst_tree(&g, 0);
        let dec = CentroidDecomposition::build(&g, &tree);
        // Check a deterministic sample of pairs (all pairs is quadratic).
        for u in 0..n {
            let v = (u * 7 + seed as usize) % n;
            let got = dec.path_max(u, v).unwrap();
            let want = if u == v { 0 } else { path_max_reference(&g, &tree, u, v) };
            prop_assert_eq!(got, want);
        }
        prop_assert!(dec.max_list_len() <= log_n(n) + 1);
    }

    /// Completeness of both verification layers on arbitrary graphs and
    /// roots: honest labels plus honest outputs are always accepted.
    #[test]
    fn verification_completeness(n in 4usize..70, extra in 0usize..80, seed in 0u64..500) {
        let g = connected_random(n, n - 1 + extra, seed, WeightStrategy::DistinctRandom { seed });
        let root = seed as usize % n;
        let tree = mst_tree(&g, root);
        let outputs: Vec<_> = tree.upward_outputs().into_iter().map(Some).collect();
        let spanning = SpanningProof::assign(&g, &tree);
        let r1 = SpanningProof::verify(&Sim::on(&g), &spanning, &outputs).unwrap();
        prop_assert!(r1.accepted, "{:?}", r1.violations);
        let r2 = MstCertificate::certify_and_verify(&Sim::on(&g), &tree, &outputs).unwrap();
        prop_assert!(r2.accepted, "{:?}", r2.violations);
        prop_assert_eq!(r1.run.rounds, 1);
        prop_assert_eq!(r2.run.rounds, 1);
    }

    /// Soundness in practice: whenever a random corruption makes the outputs
    /// stop being the certified rooted MST, the distributed verifier rejects
    /// — its verdict never contradicts the central verifier in the accepting
    /// direction.
    #[test]
    fn verification_catches_random_corruption(n in 6usize..60, extra in 2usize..60, seed in 0u64..500, faults in 1usize..4) {
        let g = connected_random(n, n - 1 + extra, seed, WeightStrategy::DistinctRandom { seed });
        let tree = mst_tree(&g, 0);
        let outputs: Vec<_> = tree.upward_outputs().into_iter().map(Some).collect();
        let labels = MstCertificate::certify(&g, &tree);
        let plan = FaultPlan::random(&g, &tree, faults, seed ^ 0x5EED);
        let bad = plan.apply(&outputs);
        let report = MstCertificate::verify(&Sim::on(&g), &labels, &bad).unwrap();
        if bad != outputs {
            prop_assert!(!report.accepted, "corruption {:?} accepted", plan.faults);
        } else {
            prop_assert!(report.accepted);
        }
        // Agreement with the central verifier: anything the central check
        // rejects, the distributed check rejects too.
        if verify_upward_outputs(&g, &bad).is_err() {
            prop_assert!(!report.accepted);
        }
    }
}
