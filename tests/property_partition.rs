//! Property tests for `lma_graph::Partition` (vendored proptest).
//!
//! The sharded executor's safety argument rests on two structural facts:
//!
//! 1. **exact cover** — every node (and therefore every CSR slot) belongs to
//!    exactly one contiguous shard, so per-shard planes touch disjoint
//!    memory;
//! 2. **boundary symmetry** — the boundary-slot lists are mirror-symmetric
//!    across shard pairs: `mirror` maps `boundary(s, t)` bijectively onto
//!    `boundary(t, s)`, and the cross-reference table agrees with the lists,
//!    so every cross-shard message has exactly one producer position and one
//!    consumer position in the exchange buffers.
//!
//! These are checked here on random connected graphs over random shard
//! counts (including counts exceeding the node count).

use lma_graph::generators::connected_random;
use lma_graph::weights::WeightStrategy;
use lma_graph::Partition;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition_covers_every_node_exactly_once(
        n in 2usize..120,
        extra in 0usize..120,
        seed in 0u64..1_000,
        shards in 1usize..12,
    ) {
        let g = connected_random(n, n - 1 + extra, seed, WeightStrategy::DistinctRandom { seed });
        let csr = g.csr();
        let p = Partition::new(csr, shards);
        let k = p.shard_count();
        prop_assert!(k >= 1 && k <= shards.min(n));

        // Contiguous cover of the node range, each node owned exactly once.
        let mut owners = vec![0usize; n];
        let mut covered = 0usize;
        for s in 0..k {
            let range = p.node_range(s);
            prop_assert!(!range.is_empty(), "shard {} owns no node", s);
            prop_assert_eq!(range.start, covered, "shards must be contiguous");
            for u in range.clone() {
                owners[u] = s;
                prop_assert_eq!(p.shard_of_node(u), s);
            }
            covered = range.end;
            // The slot range is exactly the union of the owned nodes' slots.
            prop_assert_eq!(p.slot_range(s).start, csr.offsets()[range.start]);
            prop_assert_eq!(p.slot_range(s).end, csr.offsets()[range.end]);
        }
        prop_assert_eq!(covered, n, "shards must cover every node");

        // Slot ownership follows node ownership.
        for (u, &owner) in owners.iter().enumerate() {
            for port in 0..csr.degree(u) {
                prop_assert_eq!(p.shard_of_slot(csr.slot(u, port)), owner);
            }
        }
    }

    #[test]
    fn boundary_slot_maps_are_symmetric_across_shards(
        n in 2usize..100,
        extra in 0usize..150,
        seed in 0u64..1_000,
        shards in 2usize..10,
    ) {
        let g = connected_random(n, n - 1 + extra, seed, WeightStrategy::DistinctRandom { seed });
        let csr = g.csr();
        let p = Partition::new(csr, shards);
        let k = p.shard_count();

        let mut cross_slots_seen = 0usize;
        for s in 0..k {
            for t in 0..k {
                let fwd = p.boundary(s, t);
                if s == t {
                    prop_assert!(fwd.is_empty(), "diagonal boundary must be empty");
                    continue;
                }
                let rev = p.boundary(t, s);
                prop_assert_eq!(
                    fwd.len(), rev.len(),
                    "boundary({}, {}) and boundary({}, {}) differ in size", s, t, t, s
                );
                prop_assert!(fwd.windows(2).all(|w| w[0] < w[1]), "boundary list not ascending");
                for (pos, &slot) in fwd.iter().enumerate() {
                    cross_slots_seen += 1;
                    // Each boundary slot is owned by s, received in t, and
                    // its mirror sits in the reverse list.
                    prop_assert_eq!(p.shard_of_slot(slot), s);
                    let mirror = csr.mirror(slot);
                    prop_assert_eq!(p.shard_of_slot(mirror), t);
                    prop_assert!(
                        rev.binary_search(&mirror).is_ok(),
                        "mirror of boundary slot {} missing from boundary({}, {})", slot, t, s
                    );
                    // The cross-reference round-trips onto the list.
                    prop_assert_eq!(p.cross_ref(slot), Some((s, pos)));
                }
            }
        }
        prop_assert_eq!(cross_slots_seen, p.cross_slot_count());

        // Intra-shard slots carry no cross-reference; cross-shard slots do.
        for slot in 0..csr.slot_count() {
            let intra = p.shard_of_slot(slot) == p.shard_of_slot(csr.mirror(slot));
            prop_assert_eq!(p.cross_ref(slot).is_none(), intra);
        }
    }
}
