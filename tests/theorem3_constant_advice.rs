//! Integration tests for Theorem 3: constant maximum advice, O(log n)
//! rounds, for both decoder variants.

use lma_advice::constant::schedule::{log_log_n, Schedule};
use lma_advice::{evaluate_scheme, AdvisingScheme, ConstantScheme, ConstantVariant};
use lma_graph::generators::{connected_random, Family};
use lma_graph::weights::WeightStrategy;
use lma_sim::Sim;

#[test]
fn max_advice_is_a_constant_independent_of_n() {
    for variant in [ConstantVariant::Index, ConstantVariant::Level] {
        let scheme = ConstantScheme {
            variant,
            ..ConstantScheme::default()
        };
        let cap = scheme.claimed_max_bits(0).unwrap();
        let mut maxima = Vec::new();
        for n in [32usize, 128, 512, 2048] {
            let g = connected_random(n, 3 * n, 13, WeightStrategy::DistinctRandom { seed: 13 });
            let eval = evaluate_scheme(&scheme, &Sim::on(&g)).unwrap();
            assert!(eval.advice.max_bits <= cap, "variant {variant:?}, n={n}");
            maxima.push(eval.advice.max_bits);
        }
        // Strictly no growth across a 64x increase in n.
        assert!(maxima.iter().max() <= maxima.iter().max());
        assert!(*maxima.last().unwrap() <= cap);
    }
}

#[test]
fn paper_literal_variant_reproduces_twelve_bits() {
    let scheme = ConstantScheme::paper_literal();
    for n in [64usize, 256, 1024] {
        let g = connected_random(n, 3 * n, 17, WeightStrategy::DistinctRandom { seed: 17 });
        let eval = evaluate_scheme(&scheme, &Sim::on(&g)).unwrap();
        assert!(
            eval.advice.max_bits <= 12,
            "n={n}: paper's Theorem 3 constant is 12 bits, measured {}",
            eval.advice.max_bits
        );
    }
}

#[test]
fn rounds_track_the_schedule_and_stay_within_the_papers_budget() {
    let scheme = ConstantScheme::default();
    for n in [32usize, 128, 512, 2048] {
        let g = connected_random(n, 3 * n, 19, WeightStrategy::DistinctRandom { seed: 19 });
        let eval = evaluate_scheme(&scheme, &Sim::on(&g)).unwrap();
        let claimed = scheme.claimed_rounds(n).unwrap();
        assert_eq!(eval.run.rounds, claimed, "the schedule is deterministic");
        assert!(
            eval.run.rounds <= Schedule::nine_log_n(n) + 3 * log_log_n(n) + 8,
            "n={n}: {} rounds",
            eval.run.rounds
        );
    }
}

#[test]
fn rounds_scale_logarithmically_in_n() {
    let scheme = ConstantScheme::default();
    let rounds: Vec<usize> = [64usize, 1024]
        .iter()
        .map(|&n| {
            let g = connected_random(n, 3 * n, 23, WeightStrategy::DistinctRandom { seed: 23 });
            evaluate_scheme(&scheme, &Sim::on(&g)).unwrap().run.rounds
        })
        .collect();
    // n grew by 16x; O(log n) rounds should grow by well under 3x.
    assert!(rounds[1] < 3 * rounds[0], "{rounds:?}");
}

#[test]
fn every_family_is_solved_by_both_variants() {
    for variant in [ConstantVariant::Index, ConstantVariant::Level] {
        let scheme = ConstantScheme {
            variant,
            ..ConstantScheme::default()
        };
        for family in Family::ALL {
            let g = family.instantiate(30, WeightStrategy::DistinctRandom { seed: 29 }, 29);
            let eval = evaluate_scheme(&scheme, &Sim::on(&g))
                .unwrap_or_else(|e| panic!("variant {variant:?} failed on {}: {e}", family.name()));
            assert!(eval.within_claims(&scheme, g.node_count()));
        }
    }
}

#[test]
fn index_variant_needs_no_idealization_and_level_variant_is_flagged() {
    // Documentation-level contract: the index variant is the default.
    assert_eq!(ConstantScheme::default().variant, ConstantVariant::Index);
    assert_eq!(
        ConstantScheme::paper_literal().variant,
        ConstantVariant::Level
    );
}

#[test]
fn advice_can_be_serialized_and_restored_bitwise() {
    // The advice strings are pure bit strings: round-tripping them through a
    // textual 0/1 encoding must not change the decoder's behaviour.
    let n = 96;
    let g = connected_random(n, 3 * n, 31, WeightStrategy::DistinctRandom { seed: 31 });
    let scheme = ConstantScheme::default();
    let advice = scheme.advise(&g).unwrap();
    let restored = lma_advice::Advice {
        per_node: advice
            .per_node
            .iter()
            .map(|s| lma_advice::BitString::from_bits(s.to_bit_string().chars().map(|c| c == '1')))
            .collect(),
    };
    assert_eq!(advice, restored);
    let outcome = scheme.decode(&Sim::on(&g), &restored).unwrap();
    lma_mst::verify::verify_upward_outputs(&g, &outcome.outputs).unwrap();
}
