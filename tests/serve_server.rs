//! End-to-end tests for the `lma-serve` server over real loopback TCP:
//! digest parity with the committed goldens, typed admission failures,
//! malformed-frame isolation, deadline budgets, and drain semantics.

use lma_bench::scenarios::LockFile;
use lma_serve::proto::{code, write_frame, RequestBody, ResponseBody, RunSpec};
use lma_serve::replay::Client;
use lma_serve::server::{ServerConfig, TcpServer};
use std::net::TcpStream;

fn boot(config: ServerConfig) -> (TcpServer, Client) {
    let tcp = TcpServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let client = Client::connect(tcp.addr()).expect("connect");
    (tcp, client)
}

fn run_spec(workload: &str, family: &str, n: usize, seed: u64) -> RunSpec {
    RunSpec {
        workload: workload.to_string(),
        family: family.to_string(),
        n,
        seed,
        backing: "inline".to_string(),
        threads: 0,
        round_limit: None,
        deadline_ms: None,
    }
}

fn golden_digest(id: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../SCENARIOS.lock");
    let lock =
        LockFile::parse(&std::fs::read_to_string(path).expect("lock file")).expect("lock parses");
    lock.get(id).expect("scenario in lock").digest.to_string()
}

fn shutdown(mut client: Client, tcp: TcpServer) -> u64 {
    client.send(RequestBody::Shutdown).expect("send shutdown");
    let completed = loop {
        match client.recv().expect("await Bye").body {
            ResponseBody::Bye(completed) => break completed,
            _ => continue,
        }
    };
    tcp.join();
    completed
}

#[test]
fn served_digests_match_the_committed_goldens() {
    let (tcp, mut client) = boot(ServerConfig::default());
    match client.call(RequestBody::Ping).expect("ping").body {
        ResponseBody::Pong => {}
        other => panic!("expected Pong, got {other:?}"),
    }
    // Two runs of the same scenario: both must reproduce the golden, and
    // the second hits every cache.
    let golden = golden_digest("flood/ring/n48/s11");
    for _ in 0..2 {
        let response = client
            .call(RequestBody::Run(run_spec("flood", "ring", 48, 11)))
            .expect("run");
        match response.body {
            ResponseBody::Done(report) => {
                assert_eq!(report.digest, golden, "served digest must match the lock");
                assert_eq!(report.lanes, 1);
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }
    let stats = match client.call(RequestBody::Stats).expect("stats").body {
        ResponseBody::Stats(stats) => stats,
        other => panic!("expected Stats, got {other:?}"),
    };
    assert_eq!(stats.served, 2);
    assert_eq!(stats.graph_hits, 1, "second run must reuse the graph");
    assert_eq!(stats.oracle_hits, 1, "second run must reuse the oracle");
    assert_eq!(shutdown(client, tcp), 2);
}

#[test]
fn coalesced_batches_reproduce_the_solo_digest() {
    let depth = 4;
    let (tcp, mut client) = boot(ServerConfig {
        max_batch: depth,
        ..ServerConfig::default()
    });
    let golden = golden_digest("wave/ring/n48/s81");
    for _ in 0..depth {
        client
            .send(RequestBody::Run(run_spec("wave", "ring", 48, 81)))
            .expect("send");
    }
    let mut widths = Vec::new();
    for _ in 0..depth {
        match client.recv().expect("recv").body {
            ResponseBody::Done(report) => {
                assert_eq!(report.digest, golden, "batched digest must match the lock");
                widths.push(report.lanes);
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }
    // The burst may be split across dispatch windows, but any request that
    // rode a widened batch must still have folded the same bytes.
    assert!(
        widths.iter().all(|&w| w >= 1 && w as usize <= depth),
        "lane widths out of range: {widths:?}"
    );
    shutdown(client, tcp);
}

#[test]
fn admission_failures_are_typed_and_isolated() {
    let (tcp, mut client) = boot(ServerConfig::default());
    let cases = [
        (
            run_spec("no-such-workload", "ring", 8, 1),
            code::UNKNOWN_WORKLOAD,
        ),
        (
            run_spec("flood", "no-such-family", 8, 1),
            code::UNKNOWN_FAMILY,
        ),
        (
            RunSpec {
                backing: "punchcards".to_string(),
                ..run_spec("flood", "ring", 8, 1)
            },
            code::UNKNOWN_BACKING,
        ),
        (run_spec("flood", "ring", 0, 1), code::BAD_REQUEST),
        (
            RunSpec {
                threads: 4096,
                ..run_spec("flood", "ring", 8, 1)
            },
            code::BAD_REQUEST,
        ),
    ];
    for (spec, expected) in cases {
        match client.call(RequestBody::Run(spec)).expect("call").body {
            ResponseBody::Failed(report) => assert_eq!(report.code, expected),
            other => panic!("expected Failed({expected}), got {other:?}"),
        }
    }
    // The connection and the server survived every refusal.
    let golden = golden_digest("flood/ring/n48/s11");
    match client
        .call(RequestBody::Run(run_spec("flood", "ring", 48, 11)))
        .expect("call")
        .body
    {
        ResponseBody::Done(report) => assert_eq!(report.digest, golden),
        other => panic!("expected Done, got {other:?}"),
    }
    shutdown(client, tcp);
}

#[test]
fn malformed_frames_get_bad_request_and_the_stream_survives() {
    let (tcp, client) = boot(ServerConfig::default());
    // Talk raw bytes on a second connection: a frame whose payload is
    // garbage must be answered (id 0) without desyncing the stream.
    let mut raw = TcpStream::connect(tcp.addr()).expect("connect raw");
    raw.set_nodelay(true).expect("nodelay");
    write_frame(&mut raw, &[0xee, 0xff, 0x13, 0x37]).expect("send garbage");
    let mut rd = raw.try_clone().expect("clone");
    let payload = lma_serve::proto::read_frame(&mut rd)
        .expect("read")
        .expect("a reply frame");
    let response = lma_serve::proto::Response::decode_checked(&payload).expect("decodes");
    assert_eq!(response.id, 0, "no id could be recovered");
    match response.body {
        ResponseBody::Failed(report) => assert_eq!(report.code, code::BAD_REQUEST),
        other => panic!("expected Failed, got {other:?}"),
    }
    // Same connection, now a well-formed ping: the framing held.
    let ping = lma_serve::proto::Request {
        id: 9,
        body: RequestBody::Ping,
    };
    write_frame(&mut raw, &ping.to_bytes()).expect("send ping");
    let payload = lma_serve::proto::read_frame(&mut rd)
        .expect("read")
        .expect("pong frame");
    let response = lma_serve::proto::Response::decode_checked(&payload).expect("decodes");
    assert_eq!(response.id, 9);
    assert!(matches!(response.body, ResponseBody::Pong));
    drop(raw);
    shutdown(client, tcp);
}

#[test]
fn queue_deadlines_expire_as_typed_failures() {
    let (tcp, mut client) = boot(ServerConfig::default());
    // A chunky run occupies the dispatcher while the zero-budget request
    // waits in the queue past its deadline.
    client
        .send(RequestBody::Run(run_spec("wave", "ring", 2048, 7)))
        .expect("send blocker");
    let hopeless = RunSpec {
        deadline_ms: Some(0),
        ..run_spec("flood", "ring", 48, 11)
    };
    client
        .send(RequestBody::Run(hopeless))
        .expect("send doomed");
    let mut saw_deadline = false;
    for _ in 0..2 {
        match client.recv().expect("recv").body {
            ResponseBody::Done(_) => {}
            ResponseBody::Failed(report) => {
                assert_eq!(report.code, code::DEADLINE, "{}", report.message);
                saw_deadline = true;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(saw_deadline, "the zero-budget request must expire in queue");
    shutdown(client, tcp);
}

#[test]
fn draining_refuses_new_runs_and_answers_bye() {
    let (tcp, mut client) = boot(ServerConfig::default());
    client
        .send(RequestBody::Run(run_spec("flood", "ring", 48, 11)))
        .expect("send run");
    client.send(RequestBody::Shutdown).expect("send shutdown");
    client
        .send(RequestBody::Run(run_spec("flood", "ring", 48, 11)))
        .expect("send late run");
    let (mut done, mut refused, mut byes) = (0, 0, 0);
    for _ in 0..3 {
        match client.recv().expect("recv").body {
            ResponseBody::Done(_) => done += 1,
            ResponseBody::Failed(report) => {
                assert_eq!(report.code, code::DRAINING);
                refused += 1;
            }
            ResponseBody::Bye(_) => byes += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(
        (done, refused, byes),
        (1, 1, 1),
        "queued run completes, late run is refused, shutdown gets its Bye"
    );
    tcp.join();
}
