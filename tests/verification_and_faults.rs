//! Integration tests for the verification layer (`lma-labeling`) against the
//! advising schemes: honest runs are accepted by the one-round distributed
//! verifier, corrupted runs are rejected, and the rejection happens at the
//! nodes rather than in the omniscient test harness.

use lma_advice::{AdvisingScheme, ConstantScheme, OneRoundScheme, TradeoffScheme, TrivialScheme};
use lma_graph::generators::{connected_random, geometric, grid, hypercube, Family};
use lma_graph::weights::WeightStrategy;
use lma_graph::WeightedGraph;
use lma_labeling::faults::{non_minimum_spanning_tree, FaultPlan};
use lma_labeling::{certified_run, certify_outputs, MstCertificate, SpanningProof, Violation};
use lma_mst::boruvka::{run_boruvka, BoruvkaConfig};
use lma_mst::kruskal_mst;
use lma_mst::verify::verify_upward_outputs;
use lma_mst::RootedTree;
use lma_sim::{Model, Sim};

fn all_schemes() -> Vec<Box<dyn AdvisingScheme>> {
    vec![
        Box::new(TrivialScheme::default()),
        Box::new(OneRoundScheme::default()),
        Box::new(ConstantScheme::default()),
        Box::new(ConstantScheme::paper_literal()),
        Box::new(TradeoffScheme::with_cutoff(1)),
        Box::new(TradeoffScheme::with_cutoff(2)),
        Box::new(TradeoffScheme::default()),
    ]
}

#[test]
fn every_scheme_passes_distributed_verification_on_every_family() {
    for family in [
        Family::SparseRandom,
        Family::Grid,
        Family::Hypercube,
        Family::Lollipop,
    ] {
        let g = family.instantiate(80, WeightStrategy::DistinctRandom { seed: 11 }, 11);
        for scheme in all_schemes() {
            let run = certified_run(scheme.as_ref(), &Sim::on(&g), &BoruvkaConfig::default())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", scheme.name(), family.name()));
            assert!(
                run.report.accepted,
                "{} on {} rejected an honest run: {:?}",
                scheme.name(),
                family.name(),
                run.report.violations
            );
            assert_eq!(
                run.report.run.rounds, 1,
                "verification must add exactly one round"
            );
        }
    }
}

#[test]
fn verification_stays_within_congest_on_sparse_graphs() {
    // Certificate messages carry O(log^2 n) bits; on bounded-degree graphs
    // they fit in a CONGEST(Θ(log² n)) budget, and the audit shows how far
    // above plain CONGEST(Θ(log n)) they sit.
    let n: usize = 256;
    let g = grid(16, 16, WeightStrategy::DistinctRandom { seed: 5 });
    let tree = RootedTree::from_edges(&g, 0, &kruskal_mst(&g).unwrap()).unwrap();
    let outputs: Vec<_> = tree.upward_outputs().into_iter().map(Some).collect();
    let report = MstCertificate::certify_and_verify(&Sim::on(&g), &tree, &outputs).unwrap();
    assert!(report.accepted);
    let logn = (usize::BITS - (n - 1).leading_zeros()) as usize;
    assert!(
        report.run.max_message_bits <= 4 * logn * logn,
        "certificate messages too large: {} bits",
        report.run.max_message_bits
    );
    // The spanning-tree-only proof fits in plain CONGEST.
    let labels = SpanningProof::assign(&g, &tree);
    let sim = Sim::on(&g)
        .model(Model::congest_for(n))
        .enforce_congest(true);
    let spanning_report = SpanningProof::verify(&sim, &labels, &outputs).unwrap();
    assert!(spanning_report.accepted);
    assert_eq!(spanning_report.run.congest_violations, 0);
}

#[test]
fn random_output_corruption_is_never_silently_accepted() {
    let g = connected_random(60, 160, 21, WeightStrategy::DistinctRandom { seed: 21 });
    let run = run_boruvka(&g, &BoruvkaConfig::default()).unwrap();
    let outputs: Vec<_> = run.tree.upward_outputs().into_iter().map(Some).collect();
    let labels = MstCertificate::certify(&g, &run.tree);
    let mut corrupted_runs = 0;
    for seed in 0..25u64 {
        let plan = FaultPlan::random(&g, &run.tree, 1 + (seed as usize % 3), seed);
        let bad = plan.apply(&outputs);
        if bad == outputs {
            continue;
        }
        corrupted_runs += 1;
        let report = MstCertificate::verify(&Sim::on(&g), &labels, &bad).unwrap();
        assert!(
            !report.accepted,
            "corruption {:?} was accepted by every node",
            plan.faults
        );
        // The distributed verdict must agree with the central verifier.
        assert!(verify_upward_outputs(&g, &bad).is_err() || !report.accepted);
    }
    assert!(
        corrupted_runs >= 20,
        "the fault plans must actually corrupt outputs"
    );
}

#[test]
fn non_minimum_spanning_trees_are_rejected_by_the_cycle_check() {
    for (g, seed) in [
        (
            connected_random(40, 140, 31, WeightStrategy::DistinctRandom { seed: 31 }),
            1u64,
        ),
        (hypercube(5, WeightStrategy::DistinctRandom { seed: 32 }), 2),
        (
            geometric(50, 0.35, 33, WeightStrategy::DistinctRandom { seed: 33 }),
            3,
        ),
    ] {
        let bad_tree = non_minimum_spanning_tree(&g, 0, seed)
            .expect("these graphs have non-minimum spanning trees");
        let outputs: Vec<_> = bad_tree.upward_outputs().into_iter().map(Some).collect();
        // Certify the bad tree faithfully: the spanning checks pass, the
        // binding check passes, but the cycle property fails somewhere.
        let report = MstCertificate::certify_and_verify(&Sim::on(&g), &bad_tree, &outputs).unwrap();
        assert!(!report.accepted);
        assert!(
            report.has_cycle_violation(),
            "expected a cycle-property violation, got {:?}",
            report.violations
        );
        // The spanning-tree proof alone (which knows nothing about weights)
        // accepts the same outputs: minimality is exactly what the MST
        // certificate adds.
        let labels = SpanningProof::assign(&g, &bad_tree);
        let spanning = SpanningProof::verify(&Sim::on(&g), &labels, &outputs).unwrap();
        assert!(spanning.accepted);
    }
}

#[test]
fn certify_outputs_accepts_only_the_reference_rooted_mst() {
    let g = connected_random(50, 150, 41, WeightStrategy::DistinctRandom { seed: 41 });
    let reference = BoruvkaConfig::default();
    // The reference tree itself is accepted.
    let run = run_boruvka(&g, &reference).unwrap();
    let honest: Vec<_> = run.tree.upward_outputs().into_iter().map(Some).collect();
    assert!(
        certify_outputs(&Sim::on(&g), &reference, &honest)
            .unwrap()
            .accepted
    );
    // The same MST rooted elsewhere is rejected (binding), and a corrupted
    // variant is rejected with a named violation.
    let rerooted = run_boruvka(
        &g,
        &BoruvkaConfig {
            root: Some(g.node_count() / 2),
            ..BoruvkaConfig::default()
        },
    )
    .unwrap();
    let foreign: Vec<_> = rerooted
        .tree
        .upward_outputs()
        .into_iter()
        .map(Some)
        .collect();
    let report = certify_outputs(&Sim::on(&g), &reference, &foreign).unwrap();
    assert!(!report.accepted);
    let mut dropped = honest.clone();
    dropped[7] = None;
    let report = certify_outputs(&Sim::on(&g), &reference, &dropped).unwrap();
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::MissingOutput { node: 7 })));
}

#[test]
fn certificate_label_sizes_grow_polylogarithmically() {
    let mut previous = 0usize;
    for n in [64usize, 256, 1024] {
        let g = connected_random(n, 3 * n, 51, WeightStrategy::DistinctRandom { seed: 51 });
        let tree = RootedTree::from_edges(&g, 0, &kruskal_mst(&g).unwrap()).unwrap();
        let outputs: Vec<_> = tree.upward_outputs().into_iter().map(Some).collect();
        let report = MstCertificate::certify_and_verify(&Sim::on(&g), &tree, &outputs).unwrap();
        assert!(report.accepted);
        let logn = (usize::BITS - (n - 1).leading_zeros()) as usize;
        let logw = (u32::BITS - (3 * n as u32).leading_zeros()) as usize;
        let bound = (logn + 1) * (2 * logn + logw + 8) + 64 + logn + 8;
        assert!(
            report.labels.max_bits <= bound,
            "n={n}: labels of {} bits exceed the O(log² n) budget {bound}",
            report.labels.max_bits
        );
        // Quadrupling n far less than quadruples the label size.
        if previous > 0 {
            assert!(report.labels.max_bits <= previous * 3);
        }
        previous = report.labels.max_bits;
    }
}

fn graph_families_for_tradeoff() -> Vec<WeightedGraph> {
    vec![
        connected_random(100, 280, 61, WeightStrategy::DistinctRandom { seed: 61 }),
        grid(10, 10, WeightStrategy::DistinctRandom { seed: 62 }),
        hypercube(6, WeightStrategy::DistinctRandom { seed: 63 }),
    ]
}

#[test]
fn tradeoff_scheme_outputs_are_certified_at_every_cutoff() {
    for g in graph_families_for_tradeoff() {
        for cutoff in 0..=3usize {
            let scheme = TradeoffScheme::with_cutoff(cutoff);
            let run = certified_run(&scheme, &Sim::on(&g), &BoruvkaConfig::default()).unwrap();
            assert!(
                run.report.accepted,
                "cutoff {cutoff}: {:?}",
                run.report.violations
            );
            // The total pipeline stays within (decode claim + 1) rounds.
            let claim = scheme.claimed_rounds(g.node_count()).unwrap();
            assert!(run.total_rounds() <= claim + 1);
        }
    }
}
