//! Failure-injection tests for the simulator substrate itself: the runtime
//! must detect misbehaving node programs (port abuse, non-termination) and
//! enforce the CONGEST budget when asked to, because every upper-bound claim
//! in the experiments rests on those checks being real.

use lma_graph::generators::{connected_random, ring};
use lma_graph::weights::WeightStrategy;
use lma_graph::Port;
use lma_sim::message::{bits_for_universe, BitSized};
use lma_sim::runtime::RunError;
use lma_sim::{LocalView, Model, NodeAlgorithm, Outbox, RunStats, Sim};

/// A program that keeps chattering forever on every port.
struct Chatterbox;

impl NodeAlgorithm for Chatterbox {
    type Msg = u64;
    type Output = ();

    fn init(&mut self, view: &LocalView) -> Outbox<u64> {
        (0..view.degree()).map(|p| (p, 1u64)).collect()
    }

    fn round(&mut self, view: &LocalView, _round: usize, _inbox: &[(Port, u64)]) -> Outbox<u64> {
        (0..view.degree()).map(|p| (p, 1u64)).collect()
    }

    fn is_done(&self) -> bool {
        false
    }

    fn output(&self) -> Option<()> {
        None
    }
}

/// A program that (incorrectly) sends two messages on the same port.
struct PortAbuser {
    done: bool,
}

impl NodeAlgorithm for PortAbuser {
    type Msg = u64;
    type Output = ();

    fn init(&mut self, _view: &LocalView) -> Outbox<u64> {
        vec![(0, 1), (0, 2)]
    }

    fn round(&mut self, _view: &LocalView, _round: usize, _inbox: &[(Port, u64)]) -> Outbox<u64> {
        self.done = true;
        Vec::new()
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn output(&self) -> Option<()> {
        Some(())
    }
}

/// A one-round program whose single message is deliberately enormous.
struct Megaphone {
    payload: Vec<u64>,
    done: bool,
}

#[derive(Clone)]
struct BigMsg(Vec<u64>);

impl BitSized for BigMsg {
    fn bit_size(&self) -> usize {
        64 * self.0.len()
    }
}

impl lma_sim::Wire for BigMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut lma_sim::WireReader<'_>) -> Self {
        BigMsg(Vec::decode(r))
    }
}

impl NodeAlgorithm for Megaphone {
    type Msg = BigMsg;
    type Output = ();

    fn init(&mut self, view: &LocalView) -> Outbox<BigMsg> {
        if view.node == 0 {
            vec![(0, BigMsg(self.payload.clone()))]
        } else {
            Vec::new()
        }
    }

    fn round(
        &mut self,
        _view: &LocalView,
        _round: usize,
        _inbox: &[(Port, BigMsg)],
    ) -> Outbox<BigMsg> {
        self.done = true;
        Vec::new()
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn output(&self) -> Option<()> {
        Some(())
    }
}

/// A well-behaved one-round echo used for the positive accounting checks.
struct Echo {
    heard: usize,
    done: bool,
}

impl NodeAlgorithm for Echo {
    type Msg = u32;
    type Output = usize;

    fn init(&mut self, view: &LocalView) -> Outbox<u32> {
        (0..view.degree()).map(|p| (p, p as u32)).collect()
    }

    fn round(&mut self, _view: &LocalView, _round: usize, inbox: &[(Port, u32)]) -> Outbox<u32> {
        self.heard = inbox.len();
        self.done = true;
        Vec::new()
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn output(&self) -> Option<usize> {
        self.done.then_some(self.heard)
    }
}

#[test]
fn round_limit_is_enforced() {
    let g = ring(8, WeightStrategy::Unit);
    let sim = Sim::on(&g).round_limit(25);
    let programs: Vec<Chatterbox> = g.nodes().map(|_| Chatterbox).collect();
    let err = sim.run(programs).unwrap_err();
    assert_eq!(err, RunError::RoundLimitExceeded { limit: 25 });
}

#[test]
fn duplicate_port_use_is_reported_with_the_offender() {
    let g = ring(5, WeightStrategy::Unit);
    let programs: Vec<PortAbuser> = g.nodes().map(|_| PortAbuser { done: false }).collect();
    match Sim::on(&g).run(programs) {
        Err(RunError::MalformedOutbox { port: 0, .. }) => {}
        other => panic!("expected a malformed-outbox error, got {other:?}"),
    }
}

#[test]
fn congest_enforcement_aborts_on_the_oversized_message() {
    let g = connected_random(16, 40, 1, WeightStrategy::DistinctRandom { seed: 1 });
    let sim = Sim::on(&g)
        .model(Model::Congest { bits: 128 })
        .enforce_congest(true);
    let programs: Vec<Megaphone> = g
        .nodes()
        .map(|_| Megaphone {
            payload: vec![7; 64],
            done: false,
        })
        .collect();
    match sim.run(programs) {
        Err(RunError::CongestViolation {
            round: 1,
            bits,
            budget: 128,
        }) => {
            assert_eq!(bits, 64 * 64);
        }
        other => panic!("expected a CONGEST violation, got {other:?}"),
    }
}

#[test]
fn congest_auditing_counts_instead_of_aborting() {
    let g = connected_random(16, 40, 2, WeightStrategy::DistinctRandom { seed: 2 });
    let sim = Sim::on(&g)
        .model(Model::Congest { bits: 128 })
        .enforce_congest(false);
    let programs: Vec<Megaphone> = g
        .nodes()
        .map(|_| Megaphone {
            payload: vec![7; 64],
            done: false,
        })
        .collect();
    let result = sim.run(programs).unwrap();
    assert_eq!(result.stats.congest_violations, 1);
    assert_eq!(result.stats.max_message_bits, 64 * 64);
}

#[test]
fn message_accounting_matches_hand_counts() {
    let g = ring(10, WeightStrategy::Unit);
    let programs: Vec<Echo> = g
        .nodes()
        .map(|_| Echo {
            heard: 0,
            done: false,
        })
        .collect();
    let result = Sim::on(&g).run(programs).unwrap();
    let stats: &RunStats = &result.stats;
    // Every node sends one message per port in round 1: 2 · n messages on a
    // ring, each of at most 2 bits (port numbers 0/1 as u32 values 0/1).
    assert_eq!(stats.rounds, 1);
    assert_eq!(stats.total_messages, 20);
    assert!(stats.max_message_bits <= 2);
    assert_eq!(stats.per_round_max_bits.len(), 1);
    // Every node heard exactly its degree.
    assert!(result.outputs.iter().all(|o| *o == Some(2)));
    assert!(stats.avg_message_bits() <= 2.0);
}

#[test]
fn trace_records_every_delivery_when_enabled() {
    let g = ring(6, WeightStrategy::Unit);
    let programs: Vec<Echo> = g
        .nodes()
        .map(|_| Echo {
            heard: 0,
            done: false,
        })
        .collect();
    let result = Sim::on(&g).trace(true).run(programs).unwrap();
    let trace = result.trace.expect("tracing was requested");
    assert_eq!(trace.len() as u64, result.stats.total_messages);
}

#[test]
fn congest_budget_helper_scales_with_n() {
    assert!(
        Model::congest_for(16).budget().unwrap() < Model::congest_for(1 << 20).budget().unwrap()
    );
    assert_eq!(Model::Local.budget(), None);
    assert_eq!(bits_for_universe(2), 1);
    assert_eq!(bits_for_universe(1024), 10);
}
