//! The headline tradeoff of the paper: advice size versus decoding time, for
//! every scheme, across a sweep of graph sizes and families.
//!
//! ```text
//! cargo run -p lma-advice --release --example advice_tradeoff
//! ```

// Examples talk on stdout; the print lints guard library crates.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use lma_advice::{
    evaluate_scheme, AdvisingScheme, ConstantScheme, ConstantVariant, OneRoundScheme, TrivialScheme,
};
use lma_graph::generators::Family;
use lma_graph::weights::WeightStrategy;
use lma_sim::Sim;

fn main() {
    let schemes: Vec<Box<dyn AdvisingScheme>> = vec![
        Box::new(TrivialScheme::default()),
        Box::new(OneRoundScheme::default()),
        Box::new(ConstantScheme::default()),
        Box::new(ConstantScheme {
            variant: ConstantVariant::Level,
            ..ConstantScheme::default()
        }),
    ];

    println!(
        "{:<42} {:>14} {:>6} {:>10} {:>10} {:>8}",
        "scheme", "family", "n", "max bits", "avg bits", "rounds"
    );
    for family in [
        Family::SparseRandom,
        Family::Complete,
        Family::Grid,
        Family::Ring,
    ] {
        for n in [64usize, 256, 1024] {
            let n = if family == Family::Complete {
                n.min(256)
            } else {
                n
            };
            let g = family.instantiate(n, WeightStrategy::DistinctRandom { seed: 9 }, 9);
            for scheme in &schemes {
                let eval = evaluate_scheme(scheme.as_ref(), &Sim::on(&g))
                    .expect("every scheme must solve every instance");
                println!(
                    "{:<42} {:>14} {:>6} {:>10} {:>10.2} {:>8}",
                    scheme.name(),
                    family.name(),
                    g.node_count(),
                    eval.advice.max_bits,
                    eval.advice.avg_bits,
                    eval.run.rounds
                );
            }
        }
    }

    println!();
    println!("Reading guide (matches the paper):");
    println!("  * trivial        : max advice grows like ceil(log n), 0 rounds;");
    println!("  * theorem 2      : average advice stays constant, exactly 1 round;");
    println!("  * theorem 3      : max advice is a constant (12/14 bits), rounds grow like log n.");
}
