//! The advice-vs-time frontier (the paper's open problem, explored
//! constructively): sweep the phase cutoff of the tradeoff scheme and print
//! one frontier line per cutoff, from the trivial (⌈log n⌉, 0) scheme down
//! to Theorem 3's (O(1), O(log n)) scheme.
//!
//! ```text
//! cargo run -p lma-advice --release --example tradeoff_frontier
//! ```

// Examples talk on stdout; the print lints guard library crates.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use lma_advice::constant::schedule::{log_log_n, log_n};
use lma_advice::tradeoff::frontier;
use lma_advice::{AdvisingScheme, TradeoffScheme};
use lma_graph::generators::connected_random;
use lma_graph::weights::WeightStrategy;
use lma_sim::Sim;

fn main() {
    for n in [256usize, 1024, 4096] {
        let g = connected_random(
            n,
            3 * n,
            0xF0 + n as u64,
            WeightStrategy::DistinctRandom {
                seed: 0xF0 + n as u64,
            },
        );
        println!(
            "\nn = {n}  (⌈log n⌉ = {}, ⌈log log n⌉ = {})",
            log_n(n),
            log_log_n(n)
        );
        println!(
            "{:>8} {:>16} {:>16} {:>8} {:>16}",
            "cutoff", "max advice [b]", "avg advice [b]", "rounds", "advice × rounds"
        );
        let points = frontier(&Sim::on(&g)).expect("frontier evaluation");
        for p in &points {
            println!(
                "{:>8} {:>16} {:>16.2} {:>8} {:>16}",
                p.cutoff,
                p.max_bits,
                p.avg_bits,
                p.rounds,
                p.product()
            );
        }
        // The two ends of the sweep are exactly the schemes of §1 and §3 of
        // the paper; everything in between is new territory the paper's
        // conclusion asks about.
        let ends = (
            TradeoffScheme::with_cutoff(0),
            TradeoffScheme::with_cutoff(points.last().map_or(0, |p| p.cutoff)),
        );
        println!(
            "   ends: ({} bits, 0 rounds)  …  (≤ {} bits, ≤ {} rounds)",
            ends.0.claimed_max_bits(n).unwrap_or(0),
            ends.1.claimed_max_bits(n).unwrap_or(0),
            ends.1.claimed_rounds(n).unwrap_or(0),
        );
    }
}
