//! Figure 2 of the paper: the fragments, choosing nodes and up/down selected
//! edges of one phase of the Borůvka variant, rendered as text and as
//! Graphviz DOT.
//!
//! ```text
//! cargo run -p lma-advice --release --example boruvka_phases
//! cargo run -p lma-advice --release --example boruvka_phases | dot -Tpng -o phase.png
//! ```

// Examples talk on stdout; the print lints guard library crates.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use lma_graph::generators::connected_random;
use lma_graph::weights::WeightStrategy;
use lma_mst::boruvka::{run_boruvka, BoruvkaConfig};
use lma_mst::render::{phase_summary, phase_to_dot};

fn main() {
    let g = connected_random(15, 32, 0xF2, WeightStrategy::DistinctRandom { seed: 0xF2 });
    let run = run_boruvka(&g, &BoruvkaConfig::default()).expect("connected graph");

    eprintln!(
        "Borůvka decomposition with {} merge phases:",
        run.merge_phases()
    );
    for i in 1..=run.merge_phases() {
        eprintln!("{}", phase_summary(&run, i));
    }

    // Emit the DOT of the most interesting phase (the one with several
    // multi-node fragments, as in the paper's figure) on stdout so it can be
    // piped straight into Graphviz.
    let phase = 2.min(run.merge_phases());
    println!("{}", phase_to_dot(&g, &run, phase));
}
