//! Theorem 1 in action: the lower-bound graph `G_n` (Figure 1), the certified
//! average-advice lower bound for zero-round schemes, and a concrete
//! falsification of a scheme that tries to get by with too few bits.
//!
//! ```text
//! cargo run -p lma-advice --release --example lowerbound_adversary
//! ```

// Examples talk on stdout; the print lints guard library crates.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use lma_advice::lowerbound::{
    attack_scheme_at, certified_node_bits, certified_report, pigeonhole_witness, truncated_trivial,
};
use lma_graph::dot::to_dot_plain;
use lma_graph::generators::lowerbound::{lowerbound_family_at, lowerbound_gn, LowerBoundParams};

fn main() {
    // Figure 1: the two-clique construction with its weight bands.
    let n = 8;
    let g = lowerbound_gn(&LowerBoundParams::new(n));
    println!(
        "=== G_{n} (Figure 1): {} nodes, {} edges ===",
        g.node_count(),
        g.edge_count()
    );
    println!("{}", to_dot_plain(&g, "G_8"));

    // The certified lower bound: how many bits a zero-round scheme needs on
    // average, and at each spine node.
    let report = certified_report(64);
    println!("=== certified Theorem 1 bounds for n = 64 (128 nodes) ===");
    println!(
        "average advice of any (m, 0)-scheme  >= {:.2} bits/node",
        report.average_bits
    );
    for i in [2usize, 16, 32, 62] {
        println!(
            "advice needed at u_{i:<2}               >= {} bits",
            certified_node_bits(64, i)
        );
    }

    // A concrete attack: the trivial scheme truncated below the certified
    // requirement is falsified on an explicit instance.
    let i = 2;
    let needed = certified_node_bits(16, i);
    let starved = truncated_trivial(needed - 1);
    match attack_scheme_at(&starved, 16, i).expect("adversary runs") {
        Some(witness) => println!(
            "\nstarved scheme ({} bits at u_{i}) falsified on instance {}: expected port {}, got {:?}",
            needed - 1,
            witness.instance,
            witness.expected_port,
            witness.produced
        ),
        None => println!("\nunexpected: the starved scheme survived (should not happen)"),
    }

    // The scheme-independent pigeonhole certificate.
    let family = lowerbound_family_at(16, i);
    if let Some((a, b)) = pigeonhole_witness(&starved, &family).expect("oracle runs") {
        println!(
            "pigeonhole certificate: instances {a} and {b} give u_{i} identical advice but require ports {} vs {}",
            family.correct_ports[a], family.correct_ports[b]
        );
    }

    // With the full ⌈log n⌉ bits the trivial scheme survives the same attack.
    let full = truncated_trivial(64);
    assert!(attack_scheme_at(&full, 16, i).unwrap().is_none());
    println!("full trivial scheme (⌈log n⌉ bits) survives the same family — matching Theorem 1's tightness.");
}
