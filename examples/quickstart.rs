//! Quickstart: build a weighted graph, run the paper's (O(1), O(log n))
//! advising scheme on it, and verify that the distributed decoder
//! reconstructs a rooted minimum spanning tree.
//!
//! ```text
//! cargo run -p lma-advice --release --example quickstart
//! ```

// Examples talk on stdout; the print lints guard library crates.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use lma_advice::{evaluate_scheme, AdvisingScheme, ConstantScheme};
use lma_graph::generators::connected_random;
use lma_graph::weights::WeightStrategy;
use lma_mst::verify::UpwardOutput;
use lma_sim::Sim;

fn main() {
    // 1. A connected random graph with 200 nodes, ~600 edges and pairwise
    //    distinct weights (every experiment in this repository is seeded).
    let n = 200;
    let graph = connected_random(n, 3 * n, 42, WeightStrategy::DistinctRandom { seed: 42 });
    println!(
        "graph: {} nodes, {} edges, diameter {}",
        graph.node_count(),
        graph.edge_count(),
        graph.diameter()
    );

    // 2. The main result of the paper: Theorem 3's constant-advice scheme.
    let scheme = ConstantScheme::default();

    // 3. Oracle + distributed decoding + independent MST verification, in one
    //    call.  The returned evaluation carries the measured (m, t).
    let eval =
        evaluate_scheme(&scheme, &Sim::on(&graph)).expect("the scheme must produce a verified MST");

    println!("scheme            : {}", scheme.name());
    println!(
        "max advice        : {} bits (claimed {:?})",
        eval.advice.max_bits,
        scheme.claimed_max_bits(n)
    );
    println!("average advice    : {:.2} bits/node", eval.advice.avg_bits);
    println!(
        "rounds            : {} (claimed {:?})",
        eval.run.rounds,
        scheme.claimed_rounds(n)
    );
    println!("largest message   : {} bits", eval.run.max_message_bits);
    println!("MST root          : node {}", eval.tree.root);
    println!("MST weight        : {}", graph.weight_of(&eval.tree.edges));

    // 4. The per-node outputs are the paper's upward tree representation.
    let sample: Vec<String> = (0..5)
        .map(|u| match eval.tree.upward_outputs()[u] {
            UpwardOutput::Root => format!("node {u}: root"),
            UpwardOutput::Parent(p) => format!("node {u}: parent via port {p}"),
        })
        .collect();
    println!("first outputs     : {}", sample.join(", "));
}
