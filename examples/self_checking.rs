//! Self-checking decoding: run an advising scheme, then let the **network
//! itself** verify the result in one extra round, and show what happens when
//! the advice channel is faulty.
//!
//! ```text
//! cargo run -p lma-labeling --release --example self_checking
//! ```

// Examples talk on stdout; the print lints guard library crates.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use lma_advice::{AdvisingScheme, ConstantScheme};
use lma_graph::generators::connected_random;
use lma_graph::weights::WeightStrategy;
use lma_labeling::faults::flip_advice_bits;
use lma_labeling::{certified_run, self_check::certified_run_with_advice};
use lma_mst::boruvka::BoruvkaConfig;
use lma_sim::Sim;

fn main() {
    let n = 150;
    let g = connected_random(n, 3 * n, 7, WeightStrategy::DistinctRandom { seed: 7 });
    let scheme = ConstantScheme::default();
    let reference = BoruvkaConfig::default();
    let sim = Sim::on(&g);

    // 1. Honest run: decode, then verify distributively — every node accepts.
    let honest = certified_run(&scheme, &sim, &reference).expect("honest run succeeds");
    println!("honest run ({}):", scheme.name());
    println!("  max advice        : {} bits", honest.advice.max_bits);
    println!("  decode rounds     : {}", honest.decode.rounds);
    println!(
        "  verification round: {} (accepted = {})",
        honest.report.run.rounds, honest.report.accepted
    );
    println!(
        "  max label         : {} bits",
        honest.report.labels.max_bits
    );
    println!("  total rounds      : {}", honest.total_rounds());

    // 2. Faulty advice channel: flip a few bits and decode again.  Either the
    //    decoder notices, or the verification round does — the point of the
    //    exercise is that a silent wrong answer never survives.
    println!("\ncorrupted advice (3 bit flips per trial):");
    let mut outcomes = [0u32; 3]; // [decoder rejected, nodes rejected, output unchanged]
    for seed in 0..20u64 {
        let mut advice = scheme.advise(&g).expect("oracle succeeds");
        flip_advice_bits(&mut advice, 3, seed);
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            certified_run_with_advice(&scheme, &sim, &advice, &reference)
        }));
        match attempt {
            Err(_) | Ok(Err(_)) => outcomes[0] += 1,
            Ok(Ok(run)) if !run.report.accepted => outcomes[1] += 1,
            Ok(Ok(run)) => {
                assert_eq!(
                    run.outputs, honest.outputs,
                    "a silent wrong answer slipped through"
                );
                outcomes[2] += 1;
            }
        }
    }
    println!("  decoder itself rejected : {:>2} / 20", outcomes[0]);
    println!("  nodes rejected (1 round): {:>2} / 20", outcomes[1]);
    println!("  output unaffected       : {:>2} / 20", outcomes[2]);
    println!("  silent wrong answers    :  0 / 20 (enforced by the assertion above)");
}
