//! CONGEST audit: the paper claims all its algorithms send messages of
//! O(log n) bits per edge per round.  This example runs every scheme under
//! the CONGEST(4·⌈log n⌉ + 16) model and reports the measured maximum message
//! size and any budget violations.
//!
//! ```text
//! cargo run -p lma-advice --release --example congest_audit
//! ```

// Examples talk on stdout; the print lints guard library crates.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use lma_advice::{AdvisingScheme, ConstantScheme, ConstantVariant, OneRoundScheme, TrivialScheme};
use lma_graph::generators::connected_random;
use lma_graph::weights::WeightStrategy;
use lma_mst::verify::verify_upward_outputs;
use lma_sim::{Model, Sim};

fn main() {
    let n = 300;
    let g = connected_random(
        n,
        4 * n,
        0xCA,
        WeightStrategy::DistinctRandom { seed: 0xCA },
    );
    let model = Model::congest_for(n);
    let budget = model.budget().unwrap();
    let sim = Sim::on(&g).model(model);

    let schemes: Vec<Box<dyn AdvisingScheme>> = vec![
        Box::new(TrivialScheme::default()),
        Box::new(OneRoundScheme::default()),
        Box::new(ConstantScheme::default()),
        Box::new(ConstantScheme {
            variant: ConstantVariant::Level,
            ..ConstantScheme::default()
        }),
    ];

    println!("CONGEST budget for n = {n}: {budget} bits per message\n");
    println!(
        "{:<42} {:>8} {:>14} {:>14} {:>12}",
        "scheme", "rounds", "max msg [bits]", "avg msg [bits]", "violations"
    );
    for scheme in &schemes {
        let advice = scheme.advise(&g).expect("oracle succeeds");
        let outcome = scheme.decode(&sim, &advice).expect("decode succeeds");
        verify_upward_outputs(&g, &outcome.outputs).expect("verified MST");
        println!(
            "{:<42} {:>8} {:>14} {:>14.1} {:>12}",
            scheme.name(),
            outcome.stats.rounds,
            outcome.stats.max_message_bits,
            outcome.stats.avg_message_bits(),
            outcome.stats.congest_violations
        );
    }

    println!();
    println!("Note: the Theorem 3 decoder's structured convergecast reports grow to");
    println!("O(log n) entries of a few bits each, so they exceed a *strict* 4·log n + 16");
    println!("budget by a constant factor while remaining polylogarithmic — the audit");
    println!("reports the exact measured sizes (see experiment A3 in EXPERIMENTS.md).");
}
